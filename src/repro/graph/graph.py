"""Core graph model (Definition 2.1 of the paper).

A graph ``G(N, E)`` has labelled nodes and labelled, *directed* edges.  The
paper's connection search treats the graph as undirected (requirement R3), so
the adjacency index stores, for every node, all incident edges together with
their orientation; the direction is retained because the ``UNI`` CTP filter
and several baselines need it.

Nodes and edges both expose ``label`` plus a free-form property mapping
(``P`` in Definition 2.2); node *types* (RDF types / PG labels) are kept in a
dedicated set because they are so frequently filtered on.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import GraphError

# An adjacency entry: (edge id, other endpoint id, edge leaves this node?).
AdjacencyEntry = Tuple[int, int, bool]


class Node:
    """A graph node: integer id, label, types, and arbitrary properties."""

    __slots__ = ("id", "label", "types", "props")

    def __init__(self, node_id: int, label: str = "", types: Iterable[str] = (), props: Optional[Dict[str, Any]] = None):
        self.id = node_id
        self.label = label
        self.types = frozenset(types)
        self.props: Dict[str, Any] = props or {}

    def property(self, name: str) -> Any:
        """Value of property ``name`` (``label``/``type`` are virtual props)."""
        if name == "label":
            return self.label
        if name == "type":
            return self.types
        return self.props.get(name)

    def __repr__(self) -> str:
        type_part = f" ({','.join(sorted(self.types))})" if self.types else ""
        return f"Node({self.id}, {self.label!r}{type_part})"


class Edge:
    """A directed graph edge with label, weight and arbitrary properties.

    Instances are **immutable**: assigning any attribute raises
    :class:`~repro.errors.GraphError`.  Frozen CSR snapshots and delta
    overlays *share* ``Edge`` objects with the source graph, so an
    in-place ``edge.weight = ...`` would leak future state into every
    pinned view and bypass the generation counter every cache keys on.
    Mutate through :meth:`Graph.set_edge_weight`, which installs a fresh
    ``Edge`` (copy-on-write) and bumps the generation.
    """

    __slots__ = ("id", "source", "target", "label", "weight", "props")

    def __init__(
        self,
        edge_id: int,
        source: int,
        target: int,
        label: str = "",
        weight: float = 1.0,
        props: Optional[Dict[str, Any]] = None,
    ):
        # object.__setattr__: the public __setattr__ below always raises.
        object.__setattr__(self, "id", edge_id)
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "weight", weight)
        object.__setattr__(self, "props", props or {})

    def __setattr__(self, name: str, value: Any) -> None:
        raise GraphError(
            f"Edge objects are immutable (cannot set {name!r}); frozen views "
            "share them — use Graph.set_edge_weight() so the mutation "
            "generation is bumped and caches/snapshots invalidate"
        )

    def __delattr__(self, name: str) -> None:
        raise GraphError(f"Edge objects are immutable (cannot delete {name!r})")

    # Default slot pickling restores via setattr and would trip the guard.
    def __getstate__(self) -> Tuple[Any, ...]:
        return tuple(getattr(self, slot) for slot in self.__slots__)

    def __setstate__(self, state: Tuple[Any, ...]) -> None:
        for slot, value in zip(self.__slots__, state):
            object.__setattr__(self, slot, value)

    def __reduce__(self) -> Tuple[Any, ...]:
        return (_rebuild_edge, self.__getstate__())

    def replace_weight(self, weight: float) -> "Edge":
        """A copy of this edge with ``weight`` swapped (props shared)."""
        return Edge(self.id, self.source, self.target, self.label, weight, self.props)

    def property(self, name: str) -> Any:
        if name == "label":
            return self.label
        if name == "weight":
            return self.weight
        return self.props.get(name)

    def other(self, node_id: int) -> int:
        """The endpoint opposite ``node_id`` on this edge."""
        if node_id == self.source:
            return self.target
        if node_id == self.target:
            return self.source
        raise GraphError(f"node {node_id} is not an endpoint of edge {self.id}")

    def __repr__(self) -> str:
        return f"Edge({self.id}, {self.source}-[{self.label}]->{self.target})"


def _rebuild_edge(
    edge_id: int, source: int, target: int, label: str, weight: float, props: Dict[str, Any]
) -> Edge:
    """Unpickling constructor for (immutable) :class:`Edge` objects."""
    return Edge(edge_id, source, target, label, weight, props)


class Graph:
    """A directed multigraph with bidirectional adjacency and label indexes.

    The class is append-only: nodes and edges can be added but not removed,
    which lets the CTP engines treat ids, degrees, and indexes as stable for
    the duration of a search.  (The paper precomputes node degrees ``d_n``
    before evaluating queries, see Section 4.6.)

    Example
    -------
    >>> g = Graph()
    >>> a = g.add_node("Alice", types=("entrepreneur",))
    >>> b = g.add_node("OrgB", types=("company",))
    >>> e = g.add_edge(a, b, "founded")
    >>> g.degree(a)
    1
    """

    #: Backend identifier (see :mod:`repro.graph.backend`).
    backend = "dict"
    frozen = False

    def __init__(self, name: str = ""):
        self.name = name
        self._nodes: List[Node] = []
        self._edges: List[Edge] = []
        self._adjacency: List[List[AdjacencyEntry]] = []
        self._nodes_by_label: Dict[str, List[int]] = {}
        self._nodes_by_type: Dict[str, List[int]] = {}
        self._edges_by_label: Dict[str, List[int]] = {}
        self._frozen_snapshot = None  # memoized CSR view (see freeze())
        self._generation = 0  # monotonic mutation counter (see generation)
        # Mutators and view/snapshot builders synchronize on this lock so a
        # server thread can ingest while request threads pin read views.
        self._lock = threading.RLock()
        self._init_mvcc_state()

    def _init_mvcc_state(self) -> None:
        """(Re)initialize base-snapshot / delta-overlay bookkeeping."""
        self._base = None  # frozen CSR base the delta overlay builds on
        self._base_generation: Optional[int] = None
        self._base_num_nodes = 0
        self._base_num_edges = 0
        # Base-range edges rewritten since the base froze: edge_id -> weight.
        self._weight_overrides: Dict[int, float] = {}
        self._delta_cache: Optional[Tuple[int, Any]] = None  # (generation, GraphDelta)
        self._view_cache: Optional[Tuple[int, Any]] = None  # (generation, view)
        self._compactions = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, label: str = "", types: Iterable[str] = (), **props: Any) -> int:
        """Add a node and return its id (ids are dense, starting at 0)."""
        with self._lock:
            self._generation += 1
            node_id = len(self._nodes)
            node = Node(node_id, label, types, props or None)
            self._nodes.append(node)
            self._adjacency.append([])
            self._nodes_by_label.setdefault(label, []).append(node_id)
            for type_name in node.types:
                self._nodes_by_type.setdefault(type_name, []).append(node_id)
            return node_id

    def add_edge(self, source: int, target: int, label: str = "", weight: float = 1.0, **props: Any) -> int:
        """Add a directed edge ``source -> target`` and return its id."""
        with self._lock:
            self._check_node(source)
            self._check_node(target)
            self._generation += 1
            edge_id = len(self._edges)
            edge = Edge(edge_id, source, target, label, weight, props or None)
            self._edges.append(edge)
            self._adjacency[source].append((edge_id, target, True))
            if target != source:
                self._adjacency[target].append((edge_id, source, False))
            self._edges_by_label.setdefault(label, []).append(edge_id)
            return edge_id

    def _check_node(self, node_id: int) -> None:
        if not 0 <= node_id < len(self._nodes):
            raise GraphError(f"unknown node id {node_id}")

    def set_edge_weight(self, edge_id: int, weight: float) -> None:
        """Change the weight of an existing edge.

        The one *same-size* mutation the model supports: the graph keeps
        its node/edge counts but its search results may change, so the
        mutation generation is bumped — a memoized :meth:`freeze` snapshot
        and every generation-keyed cache entry are invalidated.  The
        mutation is copy-on-write: :class:`Edge` objects are immutable
        (direct ``edge.weight = ...`` raises), so pinned frozen views keep
        the edge they froze with and only this graph — and views pinned
        *after* the call — see the new weight.
        """
        with self._lock:
            if not 0 <= edge_id < len(self._edges):
                raise GraphError(f"unknown edge id {edge_id}")
            self._generation += 1
            self._edges[edge_id] = self._edges[edge_id].replace_weight(weight)
            if self._base is not None and edge_id < self._base_num_edges:
                self._weight_overrides[edge_id] = weight

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Monotonic mutation counter: bumped by *every* mutator.

        Node/edge counts cannot distinguish same-size mutations (e.g. a
        weight update), so caches and snapshots key on this counter
        instead — any entry recorded under an older generation is stale by
        definition.  The counter only ever grows and is process-local (it
        does not survive pickling or binary snapshots, which create new
        graph objects anyway).
        """
        return self._generation

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def node(self, node_id: int) -> Node:
        self._check_node(node_id)
        return self._nodes[node_id]

    def edge(self, edge_id: int) -> Edge:
        if not 0 <= edge_id < len(self._edges):
            raise GraphError(f"unknown edge id {edge_id}")
        return self._edges[edge_id]

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes)

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges)

    def node_ids(self) -> range:
        return range(len(self._nodes))

    def edge_ids(self) -> range:
        return range(len(self._edges))

    # ------------------------------------------------------------------
    # adjacency (bidirectional: requirement R3)
    # ------------------------------------------------------------------
    def adjacent(self, node_id: int) -> Sequence[AdjacencyEntry]:
        """All edges incident to ``node_id`` as ``(edge_id, other, outgoing)``.

        Self-loops appear once, with ``outgoing=True``.
        """
        return self._adjacency[node_id]

    def degree(self, node_id: int) -> int:
        """Number of incident edges (``d_n`` in Section 4.6)."""
        return len(self._adjacency[node_id])

    def neighbors(self, node_id: int) -> List[int]:
        """Distinct neighbouring node ids, ignoring edge direction."""
        seen = set()
        out = []
        for _, other, _ in self._adjacency[node_id]:
            if other not in seen:
                seen.add(other)
                out.append(other)
        return out

    def neighbor_ids(self, node_id: int) -> Sequence[int]:
        """Distinct neighbour ids (backend API; cached on the CSR backend)."""
        return self.neighbors(node_id)

    def adjacent_filtered(
        self, node_id: int, labels: Optional[Iterable[str]] = None
    ) -> Sequence[AdjacencyEntry]:
        """Incident edges whose label is in ``labels`` (all when ``None``)."""
        entries = self._adjacency[node_id]
        if labels is None:
            return entries
        edges = self._edges
        return [entry for entry in entries if edges[entry[0]].label in labels]

    def edge_weight(self, edge_id: int) -> float:
        """Weight of edge ``edge_id`` (hot-path scalar accessor, unchecked)."""
        return self._edges[edge_id].weight

    def edge_label(self, edge_id: int) -> str:
        """Label of edge ``edge_id`` (hot-path scalar accessor, unchecked)."""
        return self._edges[edge_id].label

    def edge_endpoints(self, edge_id: int) -> Tuple[int, int]:
        """``(source, target)`` of edge ``edge_id`` (hot-path, unchecked)."""
        edge = self._edges[edge_id]
        return edge.source, edge.target

    def edge_source(self, edge_id: int) -> int:
        """Source node of edge ``edge_id`` (hot-path, unchecked)."""
        return self._edges[edge_id].source

    def edge_target(self, edge_id: int) -> int:
        """Target node of edge ``edge_id`` (hot-path, unchecked)."""
        return self._edges[edge_id].target

    def out_edges(self, node_id: int) -> List[Edge]:
        return [self._edges[e] for e, _, outgoing in self._adjacency[node_id] if outgoing]

    def in_edges(self, node_id: int) -> List[Edge]:
        return [self._edges[e] for e, _, outgoing in self._adjacency[node_id] if not outgoing]

    # ------------------------------------------------------------------
    # label / type indexes
    # ------------------------------------------------------------------
    def nodes_with_label(self, label: str) -> List[int]:
        return list(self._nodes_by_label.get(label, ()))

    def nodes_with_type(self, type_name: str) -> List[int]:
        return list(self._nodes_by_type.get(type_name, ()))

    def edges_with_label(self, label: str) -> List[int]:
        return list(self._edges_by_label.get(label, ()))

    def node_labels(self) -> List[str]:
        return list(self._nodes_by_label)

    def edge_labels(self) -> List[str]:
        return list(self._edges_by_label)

    def find_nodes(self, predicate: Callable[[Node], bool]) -> List[int]:
        """Ids of all nodes satisfying ``predicate`` (full scan)."""
        return [node.id for node in self._nodes if predicate(node)]

    def find_node_by_label(self, label: str) -> int:
        """The unique node carrying ``label`` (convenience for tests/examples)."""
        ids = self._nodes_by_label.get(label, ())
        if len(ids) != 1:
            raise GraphError(f"expected exactly one node labelled {label!r}, found {len(ids)}")
        return ids[0]

    # ------------------------------------------------------------------
    # backends
    # ------------------------------------------------------------------
    def freeze(self, force: bool = False):
        """A CSR (compressed sparse row) snapshot of this graph.

        The snapshot is memoized: repeated calls return the same
        :class:`~repro.graph.backend.CSRGraph` until the graph *mutates*
        (the memo is keyed on :attr:`generation`, so both appends and
        same-size mutations like :meth:`set_edge_weight` rebuild it).  The
        frozen view is read-only; keep mutating *this* graph and
        re-freeze.

        :class:`Edge` objects are immutable, so every weight change flows
        through :meth:`set_edge_weight` and the generation memo is always
        sound; ``force=True`` remains available to rebuild unconditionally.
        """
        from repro.graph.backend import CSRGraph

        with self._lock:
            snapshot = self._frozen_snapshot
            if (
                not force
                and snapshot is not None
                and snapshot.source_generation == self._generation
            ):
                return snapshot
            snapshot = CSRGraph(self)
            # MVCC stamps: which graph lineage this view belongs to and the
            # source generation it can serve as a delta base for.  Plain
            # instance attributes — CSRGraph's explicit __getstate__ keeps
            # them out of pickles/snapshots (a worker-side copy has no live
            # source; the snapshot file carries the generation in its meta).
            snapshot.view_source = self
            snapshot.base_generation = self._generation
            self._frozen_snapshot = snapshot
            return snapshot

    # ------------------------------------------------------------------
    # MVCC generations: base snapshot ∪ delta overlay (see repro.graph.delta)
    # ------------------------------------------------------------------
    @property
    def base_generation(self) -> Optional[int]:
        """Generation of the current base snapshot (``None`` before one exists)."""
        return self._base_generation

    @property
    def delta_size(self) -> int:
        """Mutations accumulated since the base froze (0 without a base)."""
        if self._base is None:
            return 0
        return (
            (len(self._nodes) - self._base_num_nodes)
            + (len(self._edges) - self._base_num_edges)
            + len(self._weight_overrides)
        )

    @property
    def compactions(self) -> int:
        """How many times :meth:`compact` refroze base ∪ delta."""
        return self._compactions

    def _set_base_locked(self, snapshot: Any) -> None:
        self._base = snapshot
        self._base_generation = self._generation
        self._base_num_nodes = len(self._nodes)
        self._base_num_edges = len(self._edges)
        self._weight_overrides = {}
        self._delta_cache = None
        self._view_cache = None

    def ensure_base(self) -> Any:
        """The frozen CSR base snapshot, created on first use.

        Unlike :meth:`freeze`, an existing base is *kept* when the graph
        mutates — later mutations accumulate in the delta
        (:meth:`delta_since_base`) until :meth:`compact` folds them in.
        """
        with self._lock:
            if self._base is None:
                self._set_base_locked(self.freeze())
            return self._base

    def compact(self) -> Any:
        """Refreeze base ∪ delta into a new base snapshot generation.

        Called at dispatch boundaries (e.g. by the worker pool when the
        delta crosses its compaction threshold).  A no-op when the delta
        is empty.  Compaction changes *representation*, never content, so
        the mutation generation is untouched: a view pinned at generation
        G before the compaction and a fresh one pinned after it are
        interchangeable, and generation-keyed cache entries stay valid.
        """
        with self._lock:
            self.ensure_base()
            if self._generation != self._base_generation:
                self._set_base_locked(self.freeze())
                self._compactions += 1
            return self._base

    def delta_since_base(self) -> Any:
        """The (picklable) :class:`~repro.graph.delta.GraphDelta` since the base.

        Memoized per generation — repeated dispatches at one generation
        ship the same delta object.
        """
        from repro.graph.delta import GraphDelta

        with self._lock:
            self.ensure_base()
            cached = self._delta_cache
            if cached is not None and cached[0] == self._generation:
                return cached[1]
            delta = GraphDelta.capture(self)
            self._delta_cache = (self._generation, delta)
            return delta

    def read_view(self) -> Any:
        """A consistent frozen view of the graph *as of now* (MVCC snapshot).

        The base CSR itself when nothing mutated since the base froze,
        otherwise an :class:`~repro.graph.delta.OverlayGraph` merging the
        base with the current delta.  Views are immutable and memoized per
        generation: a request that pins one keeps a torn-read-free picture
        of the graph no matter how many mutations land while it evaluates.
        """
        with self._lock:
            base = self.ensure_base()
            cached = self._view_cache
            if cached is not None and cached[0] == self._generation:
                return cached[1]
            if self._generation == self._base_generation:
                view = base
            else:
                from repro.graph.delta import OverlayGraph

                view = OverlayGraph(base, self.delta_since_base(), view_source=self)
            self._view_cache = (self._generation, view)
            return view

    # ------------------------------------------------------------------
    # pickling (the lock is not picklable; caches/views are process-local)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "_nodes": self._nodes,
            "_edges": self._edges,
            "_adjacency": self._adjacency,
            "_nodes_by_label": self._nodes_by_label,
            "_nodes_by_type": self._nodes_by_type,
            "_edges_by_label": self._edges_by_label,
            "_generation": self._generation,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._frozen_snapshot = None
        self._lock = threading.RLock()
        self._init_mvcc_state()

    # ------------------------------------------------------------------
    # display helpers
    # ------------------------------------------------------------------
    def describe_edge(self, edge_id: int) -> str:
        edge = self.edge(edge_id)
        source = self._nodes[edge.source].label or str(edge.source)
        target = self._nodes[edge.target].label or str(edge.target)
        label = edge.label or "-"
        return f"{source} -[{label}]-> {target}"

    def describe_tree(self, edge_ids: Iterable[int]) -> str:
        """Human-readable rendering of a set of edges (a CTP result)."""
        parts = sorted(self.describe_edge(e) for e in edge_ids)
        if not parts:
            return "(single node)"
        return "; ".join(parts)

    def __repr__(self) -> str:
        name = f" {self.name!r}" if self.name else ""
        return f"Graph({name} nodes={self.num_nodes}, edges={self.num_edges})"


def induced_edge_subgraph(graph: Graph, edge_ids: Iterable[int]) -> Dict[int, List[int]]:
    """Undirected adjacency (node -> neighbour list) of a subset of edges.

    Used to analyse CTP results: leaf detection, path checks, decomposition
    into simple edge sets (Definitions 4.5-4.7).
    """
    adjacency: Dict[int, List[int]] = {}
    for edge_id in edge_ids:
        edge = graph.edge(edge_id)
        adjacency.setdefault(edge.source, []).append(edge.target)
        adjacency.setdefault(edge.target, []).append(edge.source)
    return adjacency
