"""Graph (de)serialisation.

Two formats are supported:

* **TSV triples** — the paper stores graphs as a ``graph(id, source,
  edgeLabel, target)`` table in PostgreSQL; the TSV format mirrors one edge
  per line, addressed by node labels.  Lossy for node types/properties.
* **JSON** — full-fidelity round-tripping of nodes (labels, types,
  properties) and edges (labels, weights, properties).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph

PathLike = Union[str, Path]


def save_graph_tsv(graph: Graph, path: PathLike) -> None:
    """Write one ``source<TAB>label<TAB>target`` line per edge (by node label)."""
    with open(path, "w", encoding="utf-8") as handle:
        for edge in graph.edges():
            source = graph.node(edge.source).label
            target = graph.node(edge.target).label
            handle.write(f"{source}\t{edge.label}\t{target}\n")


def load_graph_tsv(path: PathLike, name: str = "") -> Graph:
    """Load a TSV triple file written by :func:`save_graph_tsv`."""
    builder = GraphBuilder(name)
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise GraphError(f"{path}:{line_number}: expected 3 tab-separated fields, got {len(parts)}")
            builder.triple(*parts)
    return builder.graph


def save_graph_json(graph: Graph, path: PathLike) -> None:
    """Full-fidelity JSON dump (nodes with types/props, edges with weights)."""
    payload = {
        "name": graph.name,
        "nodes": [
            {"id": node.id, "label": node.label, "types": sorted(node.types), "props": node.props}
            for node in graph.nodes()
        ],
        "edges": [
            {
                "id": edge.id,
                "source": edge.source,
                "target": edge.target,
                "label": edge.label,
                "weight": edge.weight,
                "props": edge.props,
            }
            for edge in graph.edges()
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def load_graph_json(path: PathLike) -> Graph:
    """Load a JSON dump written by :func:`save_graph_json`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    graph = Graph(payload.get("name", ""))
    for node in payload["nodes"]:
        node_id = graph.add_node(node["label"], node.get("types", ()), **node.get("props", {}))
        if node_id != node["id"]:
            raise GraphError(f"non-dense node ids in {path} (expected {node_id}, found {node['id']})")
    for edge in payload["edges"]:
        graph.add_edge(edge["source"], edge["target"], edge.get("label", ""), edge.get("weight", 1.0), **edge.get("props", {}))
    return graph
