"""Label-oriented graph construction helpers.

RDF-style datasets are naturally expressed as (subject label, edge label,
object label) triples; :class:`GraphBuilder` resolves labels to node ids,
creating nodes on first use, which keeps dataset definitions (tests, paper
figures, examples) readable.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

from repro.graph.graph import Graph


class GraphBuilder:
    """Incrementally build a :class:`Graph` addressing nodes by label.

    Example
    -------
    >>> b = GraphBuilder()
    >>> b.triple("Alice", "citizenOf", "France")
    >>> b.set_types("Alice", "entrepreneur")
    >>> g = b.graph
    >>> g.num_edges
    1
    """

    def __init__(self, name: str = ""):
        self.graph = Graph(name)
        self._ids_by_label: Dict[str, int] = {}

    def node(self, label: str, types: Iterable[str] = (), **props: Any) -> int:
        """Return the id for ``label``, creating the node if needed.

        Types and properties given on later calls are merged into the
        existing node.
        """
        node_id = self._ids_by_label.get(label)
        if node_id is None:
            node_id = self.graph.add_node(label, types, **props)
            self._ids_by_label[label] = node_id
            return node_id
        node = self.graph.node(node_id)
        if types:
            node.types = node.types | frozenset(types)
            for type_name in types:
                index = self.graph._nodes_by_type.setdefault(type_name, [])
                if node_id not in index:
                    index.append(node_id)
        if props:
            node.props.update(props)
        return node_id

    def set_types(self, label: str, *types: str) -> int:
        return self.node(label, types)

    def triple(self, source: str, edge_label: str, target: str, weight: float = 1.0, **props: Any) -> int:
        """Add the edge ``source -[edge_label]-> target`` by node labels."""
        source_id = self.node(source)
        target_id = self.node(target)
        return self.graph.add_edge(source_id, target_id, edge_label, weight, **props)

    def triples(self, rows: Iterable[Tuple[str, str, str]]) -> None:
        for source, edge_label, target in rows:
            self.triple(source, edge_label, target)

    def id_of(self, label: str) -> int:
        """Id of an existing node (raises ``KeyError`` if absent)."""
        return self._ids_by_label[label]

    def ids_of(self, *labels: str) -> Tuple[int, ...]:
        return tuple(self._ids_by_label[label] for label in labels)


def graph_from_triples(rows: Iterable[Tuple[str, str, str]], name: str = "", types: Optional[Dict[str, Iterable[str]]] = None) -> Graph:
    """Build a graph from (subject, predicate, object) label triples.

    ``types`` optionally maps node labels to their type set, mirroring the
    parenthesised annotations in the paper's Figure 1.
    """
    builder = GraphBuilder(name)
    builder.triples(rows)
    if types:
        for label, type_names in types.items():
            builder.node(label, type_names)
    return builder.graph
