"""Pluggable graph backends: the ``GraphBackend`` protocol and CSR storage.

The CTP engines (``repro.ctp``), the traversal utilities and the baseline
simulators only ever *read* a graph, and they read it through a small
surface: neighbor iteration, per-edge scalars (weight, label), and the
label/type indexes.  :class:`GraphBackend` names that surface so any
storage layout can be swapped in underneath the algorithms.

Two backends ship today:

``dict``
    :class:`repro.graph.graph.Graph` itself — the mutable, append-only
    dict/list-of-lists representation used while a graph is being built.

``csr``
    :class:`CSRGraph` — an immutable compressed-sparse-row snapshot
    produced by :meth:`Graph.freeze`.  Adjacency lives in flat ``array``
    offset/target/edge columns (one ``memoryview`` slice per node), edge
    weights and label ids are parallel scalar columns, and per-label edge
    indexes plus per-node caches make repeated neighborhood expansion —
    the hot loop of every algorithm in Section 4 of the paper — cheap.

Select a backend per search via ``SearchConfig(backend="csr")``, on the
command line via ``--backend``, or explicitly with
``algorithm.run(graph.freeze(), ...)``; the two backends are drop-in
interchangeable (see ``tests/test_backend_csr.py`` for the equivalence
property tests).
"""

from __future__ import annotations

from array import array
from collections import OrderedDict
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.errors import GraphError
from repro.graph.graph import AdjacencyEntry, Edge, Graph, Node

#: Names accepted by :func:`resolve_backend` / ``SearchConfig.backend``.
BACKENDS = ("auto", "dict", "csr")


@runtime_checkable
class GraphBackend(Protocol):
    """The read surface the search algorithms require of a graph.

    ``Graph`` (the mutable dict backend) and :class:`CSRGraph` (the frozen
    CSR backend) both satisfy this protocol; algorithms must not rely on
    anything outside it so the backends stay interchangeable.
    """

    #: Backend identifier ("dict" or "csr").
    backend: str

    @property
    def num_nodes(self) -> int: ...

    @property
    def num_edges(self) -> int: ...

    def node(self, node_id: int) -> Node: ...

    def edge(self, edge_id: int) -> Edge: ...

    def node_ids(self) -> range: ...

    def edge_ids(self) -> range: ...

    def adjacent(self, node_id: int) -> Sequence[AdjacencyEntry]: ...

    def adjacent_filtered(
        self, node_id: int, labels: Optional[FrozenSet[str]] = None
    ) -> Sequence[AdjacencyEntry]: ...

    def degree(self, node_id: int) -> int: ...

    def neighbors(self, node_id: int) -> List[int]: ...

    def neighbor_ids(self, node_id: int) -> Sequence[int]: ...

    def edge_weight(self, edge_id: int) -> float: ...

    def edge_label(self, edge_id: int) -> str: ...

    def edge_endpoints(self, edge_id: int) -> Tuple[int, int]: ...

    def edge_source(self, edge_id: int) -> int: ...

    def edge_target(self, edge_id: int) -> int: ...

    def nodes_with_label(self, label: str) -> List[int]: ...

    def nodes_with_type(self, type_name: str) -> List[int]: ...

    def edges_with_label(self, label: str) -> List[int]: ...


class CSRGraph:
    """An immutable CSR (compressed sparse row) snapshot of a :class:`Graph`.

    Adjacency is stored as three flat parallel columns — incident edge id,
    other endpoint, outgoing flag — indexed by a per-node offset array, so
    node ``n``'s neighborhood is the half-open slice
    ``[offsets[n], offsets[n+1])`` of each column.  Edge weights and label
    ids are parallel per-edge columns, which lets the engines read the two
    scalars their hot loops need without materializing :class:`Edge`
    objects.  Per-node adjacency tuples, distinct-neighbor tuples and
    label-filtered adjacency are cached on first use: connection search
    expands the same frontier nodes over and over, so after the first
    visit an expansion is a single list index.

    Node and edge *objects* (labels, types, properties) are shared with
    the source graph — CSR accelerates topology, not metadata.  The
    snapshot is topology-immutable: :meth:`add_node` / :meth:`add_edge`
    raise :class:`GraphError`; mutate the source graph and call
    :meth:`Graph.freeze` again instead.

    A snapshot can also live *outside* the process: ``repro.graph.snapshot``
    serializes the flat columns into a versioned binary file and loads them
    back zero-copy through ``mmap`` (:meth:`_from_columns`), so N worker
    processes share one physical copy of the adjacency.  ``snapshot_path``
    is set on instances that came from (or were saved to) such a file.
    Instances are picklable — the ``memoryview`` columns round-trip through
    their raw bytes — which the process-pool dispatcher relies on for any
    graph that has no snapshot file yet.
    """

    backend = "csr"
    frozen = True

    #: Flat numeric columns, in serialization order: (attribute, typecode).
    #: These are exactly the columns the binary snapshot stores and the
    #: pickle state round-trips; everything else is metadata.
    _COLUMN_SPECS: Tuple[Tuple[str, str], ...] = (
        ("_offsets", "q"),
        ("_adj_edge", "q"),
        ("_adj_other", "q"),
        ("_adj_out", "b"),
        ("_weights", "d"),
        ("_edge_source", "q"),
        ("_edge_target", "q"),
        ("_edge_label_ids", "q"),
    )

    def __init__(self, source: Graph):
        self.name = source.name
        # The source's mutation generation at freeze time: Graph.freeze()
        # keys its memo on this, so any later mutation (including same-size
        # ones like set_edge_weight) rebuilds instead of serving this view.
        self.source_generation: Optional[int] = getattr(source, "generation", 0)
        num_nodes = source.num_nodes
        num_edges = source.num_edges
        self._num_nodes = num_nodes
        self._num_edges = num_edges
        self._nodes: List[Node] = list(source._nodes)
        self._edges: List[Edge] = list(source._edges)
        # --- CSR adjacency columns ---
        offsets = array("q", bytes(8 * (num_nodes + 1)))
        adj_edge = array("q")
        adj_other = array("q")
        adj_out = array("b")
        for node_id in range(num_nodes):
            entries = source._adjacency[node_id]
            offsets[node_id + 1] = offsets[node_id] + len(entries)
            for edge_id, other, outgoing in entries:
                adj_edge.append(edge_id)
                adj_other.append(other)
                adj_out.append(1 if outgoing else 0)
        self._offsets = offsets
        self._adj_edge = memoryview(adj_edge)
        self._adj_other = memoryview(adj_other)
        self._adj_out = memoryview(adj_out)
        # --- per-edge scalar columns ---
        self._weights = array("d", (edge.weight for edge in self._edges))
        self._edge_source = array("q", (edge.source for edge in self._edges))
        self._edge_target = array("q", (edge.target for edge in self._edges))
        label_ids: Dict[str, int] = {}
        edge_label_ids = array("q", bytes(8 * num_edges))
        for edge in self._edges:
            edge_label_ids[edge.id] = label_ids.setdefault(edge.label, len(label_ids))
        self._edge_label_ids = edge_label_ids
        self._label_names: List[str] = list(label_ids)
        # --- label / type indexes (per-label edge index included) ---
        self._nodes_by_label = {label: tuple(ids) for label, ids in source._nodes_by_label.items()}
        self._nodes_by_type = {name: tuple(ids) for name, ids in source._nodes_by_type.items()}
        self._edges_by_label = {label: array("q", ids) for label, ids in source._edges_by_label.items()}
        self._mmap = None
        self.snapshot_path: Optional[str] = None
        self._reset_caches()

    #: Above this node count the per-node view caches switch from dense
    #: ``[None] * num_nodes`` lists (fastest lookups, but ~8 bytes per node
    #: up front — 8MB of pointers per cache at 10^6 nodes, paid even by a
    #: search that touches a few thousand nodes) to plain dicts holding only
    #: the nodes actually expanded.
    _LAZY_CACHE_THRESHOLD = 1 << 17
    #: Entry cap of the label-filtered adjacency cache.  Its key space is
    #: nodes x label-sets — unbounded on a big graph under a long-lived
    #: server — so it evicts least-recently-used beyond this.
    _FILTERED_CACHE_CAP = 4096

    def _reset_caches(self) -> None:
        """(Re)initialize the lazy per-node view caches."""
        num_nodes = self._num_nodes
        if num_nodes > self._LAZY_CACHE_THRESHOLD:
            self._adj_cache: Any = {}
            self._neighbor_cache: Any = {}
        else:
            self._adj_cache = [None] * num_nodes
            self._neighbor_cache = [None] * num_nodes
        self._filtered_cache: "OrderedDict[Tuple[int, FrozenSet[str]], Tuple[AdjacencyEntry, ...]]" = OrderedDict()

    @classmethod
    def _from_columns(
        cls,
        name: str,
        nodes: List[Node],
        edges: List[Edge],
        columns: Dict[str, Any],
        label_names: List[str],
        nodes_by_label: Dict[str, Tuple[int, ...]],
        nodes_by_type: Dict[str, Tuple[int, ...]],
        edges_by_label: Dict[str, "array"],
        mmap_obj: Any = None,
        snapshot_path: Optional[str] = None,
    ) -> "CSRGraph":
        """Assemble a snapshot directly from pre-built columns.

        The constructor used by the binary snapshot loader and by
        unpickling: ``columns`` maps each :attr:`_COLUMN_SPECS` attribute
        to an ``array`` or (possibly ``mmap``-backed) ``memoryview`` of the
        right typecode.  ``mmap_obj`` is retained on the instance to pin
        the mapping for the columns' lifetime.
        """
        graph = cls.__new__(cls)
        graph._assemble(
            name,
            nodes,
            edges,
            columns,
            label_names,
            nodes_by_label,
            nodes_by_type,
            edges_by_label,
            mmap_obj=mmap_obj,
            snapshot_path=snapshot_path,
        )
        return graph

    def _assemble(
        self,
        name: str,
        nodes: List[Node],
        edges: List[Edge],
        columns: Dict[str, Any],
        label_names: List[str],
        nodes_by_label: Dict[str, Tuple[int, ...]],
        nodes_by_type: Dict[str, Tuple[int, ...]],
        edges_by_label: Dict[str, "array"],
        mmap_obj: Any = None,
        snapshot_path: Optional[str] = None,
    ) -> None:
        """Fill this (raw) instance from pre-built columns and metadata.

        The single assembly path shared by :meth:`_from_columns` (snapshot
        loading) and :meth:`__setstate__` (unpickling), so column handling
        cannot diverge between the two.
        """
        self.name = name
        self._num_nodes = len(nodes)
        self._num_edges = len(edges)
        self._nodes = nodes
        self._edges = edges
        for attr, _ in self._COLUMN_SPECS:
            self.__dict__[attr] = columns[attr]
        # Adjacency columns are always exposed as memoryviews so slicing in
        # the hot accessors stays zero-copy under either storage.
        for attr in ("_adj_edge", "_adj_other", "_adj_out"):
            if not isinstance(self.__dict__[attr], memoryview):
                self.__dict__[attr] = memoryview(self.__dict__[attr])
        self._label_names = label_names
        self._nodes_by_label = nodes_by_label
        self._nodes_by_type = nodes_by_type
        self._edges_by_label = edges_by_label
        self._mmap = mmap_obj
        self.snapshot_path = snapshot_path
        # A loaded/unpickled snapshot has no live source graph: it must
        # never satisfy a Graph.freeze() memo check.
        self.source_generation = None
        self._reset_caches()

    # ------------------------------------------------------------------
    # pickling (memoryview columns round-trip through raw bytes)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        """Picklable state: raw column bytes + metadata, no caches/mmap.

        ``memoryview`` columns (including ``mmap``-backed ones) are
        rendered to bytes; the lazy view caches are dropped (rebuilt on
        demand) and the mapping handle stays with this process.
        """
        columns = {}
        for attr, typecode in self._COLUMN_SPECS:
            # array and memoryview both render to raw bytes the same way.
            columns[attr] = (typecode, self.__dict__[attr].tobytes())
        return {
            "name": self.name,
            "nodes": self._nodes,
            "edges": self._edges,
            "columns": columns,
            "label_names": self._label_names,
            "nodes_by_label": self._nodes_by_label,
            "nodes_by_type": self._nodes_by_type,
            "edges_by_label": {label: ids.tobytes() for label, ids in self._edges_by_label.items()},
            "snapshot_path": self.snapshot_path,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        columns: Dict[str, Any] = {}
        for attr, _ in self._COLUMN_SPECS:
            typecode, raw = state["columns"][attr]
            column = array(typecode)
            column.frombytes(raw)
            columns[attr] = column
        edges_by_label = {}
        for label, raw in state["edges_by_label"].items():
            ids = array("q")
            ids.frombytes(raw)
            edges_by_label[label] = ids
        self._assemble(
            state["name"],
            state["nodes"],
            state["edges"],
            columns,
            state["label_names"],
            state["nodes_by_label"],
            state["nodes_by_type"],
            edges_by_label,
            mmap_obj=None,
            snapshot_path=state.get("snapshot_path"),
        )

    # ------------------------------------------------------------------
    # immutability
    # ------------------------------------------------------------------
    def add_node(self, *args: Any, **kwargs: Any) -> int:
        raise GraphError(
            "cannot add_node to a frozen CSRGraph; "
            "mutate the source Graph and call freeze() again"
        )

    def add_edge(self, *args: Any, **kwargs: Any) -> int:
        raise GraphError(
            "cannot add_edge to a frozen CSRGraph; "
            "mutate the source Graph and call freeze() again"
        )

    def freeze(self, force: bool = False) -> "CSRGraph":
        """Already frozen — freezing is idempotent."""
        return self

    @property
    def generation(self) -> int:
        """Mutation generation of this (immutable) view — constant.

        Reports the source graph's generation at freeze time so a frozen
        view and its source carry the same cache-key component; loaded or
        unpickled snapshots (no live source) report 0.
        """
        return self.source_generation or 0

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def node(self, node_id: int) -> Node:
        if not 0 <= node_id < self._num_nodes:
            raise GraphError(f"unknown node id {node_id}")
        return self._nodes[node_id]

    def edge(self, edge_id: int) -> Edge:
        if not 0 <= edge_id < self._num_edges:
            raise GraphError(f"unknown edge id {edge_id}")
        return self._edges[edge_id]

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes)

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges)

    def node_ids(self) -> range:
        return range(self._num_nodes)

    def edge_ids(self) -> range:
        return range(self._num_edges)

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def adjacent(self, node_id: int) -> Tuple[AdjacencyEntry, ...]:
        """All incident edges of ``node_id`` as ``(edge_id, other, outgoing)``."""
        cache = self._adj_cache
        cached = cache.get(node_id) if type(cache) is dict else cache[node_id]
        if cached is None:
            start, end = self._offsets[node_id], self._offsets[node_id + 1]
            cached = tuple(
                zip(
                    self._adj_edge[start:end].tolist(),
                    self._adj_other[start:end].tolist(),
                    map(bool, self._adj_out[start:end]),
                )
            )
            cache[node_id] = cached
        return cached

    def adjacent_filtered(
        self, node_id: int, labels: Optional[FrozenSet[str]] = None
    ) -> Tuple[AdjacencyEntry, ...]:
        """Incident edges whose label is in ``labels`` (all when ``None``)."""
        if labels is None:
            return self.adjacent(node_id)
        if not isinstance(labels, frozenset):
            labels = frozenset(labels)  # cache key; dict backend takes any iterable
        key = (node_id, labels)
        cache = self._filtered_cache
        cached = cache.get(key)
        if cached is None:
            label_ids = self._edge_label_ids
            names = self._label_names
            cached = tuple(
                entry for entry in self.adjacent(node_id) if names[label_ids[entry[0]]] in labels
            )
            cache[key] = cached
            if len(cache) > self._FILTERED_CACHE_CAP:
                cache.popitem(last=False)
        else:
            cache.move_to_end(key)
        return cached

    def degree(self, node_id: int) -> int:
        return self._offsets[node_id + 1] - self._offsets[node_id]

    def neighbor_ids(self, node_id: int) -> Tuple[int, ...]:
        """Distinct neighbouring node ids (cached, direction ignored)."""
        cache = self._neighbor_cache
        cached = cache.get(node_id) if type(cache) is dict else cache[node_id]
        if cached is None:
            start, end = self._offsets[node_id], self._offsets[node_id + 1]
            others = self._adj_other[start:end].tolist()
            cached = tuple(dict.fromkeys(others))
            cache[node_id] = cached
        return cached

    def neighbors(self, node_id: int) -> List[int]:
        return list(self.neighbor_ids(node_id))

    def out_edges(self, node_id: int) -> List[Edge]:
        return [self._edges[e] for e, _, outgoing in self.adjacent(node_id) if outgoing]

    def in_edges(self, node_id: int) -> List[Edge]:
        return [self._edges[e] for e, _, outgoing in self.adjacent(node_id) if not outgoing]

    # ------------------------------------------------------------------
    # per-edge scalar columns (the hot-path accessors)
    # ------------------------------------------------------------------
    def edge_weight(self, edge_id: int) -> float:
        return self._weights[edge_id]

    def edge_label(self, edge_id: int) -> str:
        return self._label_names[self._edge_label_ids[edge_id]]

    def edge_endpoints(self, edge_id: int) -> Tuple[int, int]:
        """``(source, target)`` read off the flat endpoint columns."""
        return self._edge_source[edge_id], self._edge_target[edge_id]

    def edge_source(self, edge_id: int) -> int:
        return self._edge_source[edge_id]

    def edge_target(self, edge_id: int) -> int:
        return self._edge_target[edge_id]

    # ------------------------------------------------------------------
    # label / type indexes
    # ------------------------------------------------------------------
    def nodes_with_label(self, label: str) -> List[int]:
        return list(self._nodes_by_label.get(label, ()))

    def nodes_with_type(self, type_name: str) -> List[int]:
        return list(self._nodes_by_type.get(type_name, ()))

    def edges_with_label(self, label: str) -> List[int]:
        return list(self._edges_by_label.get(label, ()))

    def node_labels(self) -> List[str]:
        return list(self._nodes_by_label)

    def edge_labels(self) -> List[str]:
        return list(self._edges_by_label)

    def find_nodes(self, predicate: Callable[[Node], bool]) -> List[int]:
        return [node.id for node in self._nodes if predicate(node)]

    def find_node_by_label(self, label: str) -> int:
        ids = self._nodes_by_label.get(label, ())
        if len(ids) != 1:
            raise GraphError(f"expected exactly one node labelled {label!r}, found {len(ids)}")
        return ids[0]

    # ------------------------------------------------------------------
    # display helpers
    # ------------------------------------------------------------------
    def describe_edge(self, edge_id: int) -> str:
        edge = self.edge(edge_id)
        source = self._nodes[edge.source].label or str(edge.source)
        target = self._nodes[edge.target].label or str(edge.target)
        label = edge.label or "-"
        return f"{source} -[{label}]-> {target}"

    def describe_tree(self, edge_ids: Iterable[int]) -> str:
        parts = sorted(self.describe_edge(e) for e in edge_ids)
        if not parts:
            return "(single node)"
        return "; ".join(parts)

    def __repr__(self) -> str:
        name = f" {self.name!r}" if self.name else ""
        return f"CSRGraph({name} nodes={self.num_nodes}, edges={self.num_edges})"


def freeze(graph: Graph) -> CSRGraph:
    """CSR snapshot of ``graph`` (memoized — see :meth:`Graph.freeze`)."""
    return graph.freeze()


def backend_name(graph: Any) -> str:
    """The backend identifier of a graph object (``"dict"`` when untagged)."""
    return getattr(graph, "backend", "dict")


def resolve_backend(graph: Any, backend: str = "auto") -> Any:
    """Return ``graph`` in the representation requested by ``backend``.

    * ``"auto"`` / ``"dict"`` — use the graph exactly as given (an already
      frozen :class:`CSRGraph` is kept, never copied back);
    * ``"csr"`` — freeze a mutable :class:`Graph` (memoized on the graph,
      so repeated searches share one snapshot); no-op when already frozen.
    """
    if backend in ("auto", "dict") or backend is None:
        return graph
    if backend == "csr":
        freezer = getattr(graph, "freeze", None)
        return freezer() if freezer is not None else graph
    raise GraphError(f"unknown graph backend {backend!r}; use one of {BACKENDS}")
