"""Delta overlays: MVCC graph generations over one frozen base snapshot.

The CSR backend (:mod:`repro.graph.backend`) is freeze-once: a single
``add_edge`` or ``set_edge_weight`` invalidates the whole snapshot, and a
process pool serving it pays a full re-serialize + worker respawn per
mutation.  This module splits a mutating graph into

``base``
    a frozen :class:`~repro.graph.backend.CSRGraph` snapshot (possibly
    mmap-shared across worker processes), taken at some *base generation*;

``delta``
    a :class:`GraphDelta` — the cheap, picklable record of everything that
    happened since: appended nodes/edges, weight overrides on base-range
    edges, and the per-label/type index suffixes those appends imply.

:class:`OverlayGraph` merges the two behind the existing ``GraphBackend``
protocol, so the CTP engines, traversal, and baselines read a graph at
generation G without knowing whether it is one frozen file or base ∪
delta.  Reads reproduce a full re-freeze of the same graph **exactly** —
same adjacency order (base entries precede delta entries, both in
edge-insertion order, which is edge-id order), same index order, same
weights — so search results are bit-identical to evaluating over a fresh
:meth:`~repro.graph.graph.Graph.freeze` (``tests/test_delta.py`` pins
this per algorithm and per generation).

Lifecycle (driven by :class:`~repro.graph.graph.Graph` and the worker
pool)::

    freeze base ──► mutations accumulate in the delta
         ▲               │ read_view() => OverlayGraph(base, delta)
         │               ▼
         └── compact() when delta_size crosses the pool's threshold
             (refreeze base ∪ delta; generation unchanged — same content)

Everything here is immutable after construction: views can be shared
across request threads and shipped (delta only) to worker processes.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.errors import GraphError
from repro.graph.graph import AdjacencyEntry, Edge, Graph, Node


class GraphDelta:
    """Everything that happened to a graph since its base snapshot froze.

    A plain, picklable value object: the process-pool dispatcher ships it
    per dispatch to workers that keep the (mmap-shared) base loaded, so a
    mutation costs bytes-proportional-to-the-delta instead of a full graph
    re-serialization.  All sequences are in insertion order — which for
    dense ids is id order — because the overlay's bit-identical-reads
    guarantee depends on reproducing the source graph's append order.
    """

    __slots__ = (
        "base_generation",
        "generation",
        "num_base_nodes",
        "num_base_edges",
        "nodes",
        "edges",
        "weight_overrides",
        "override_edges",
        "adjacency",
        "nodes_by_label",
        "nodes_by_type",
        "edges_by_label",
    )

    def __init__(
        self,
        base_generation: int,
        generation: int,
        num_base_nodes: int,
        num_base_edges: int,
        nodes: Tuple[Node, ...],
        edges: Tuple[Edge, ...],
        weight_overrides: Dict[int, float],
        override_edges: Dict[int, Edge],
        adjacency: Dict[int, Tuple[AdjacencyEntry, ...]],
        nodes_by_label: Dict[str, Tuple[int, ...]],
        nodes_by_type: Dict[str, Tuple[int, ...]],
        edges_by_label: Dict[str, Tuple[int, ...]],
    ):
        self.base_generation = base_generation
        self.generation = generation
        self.num_base_nodes = num_base_nodes
        self.num_base_edges = num_base_edges
        self.nodes = nodes
        self.edges = edges
        self.weight_overrides = weight_overrides
        self.override_edges = override_edges
        self.adjacency = adjacency
        self.nodes_by_label = nodes_by_label
        self.nodes_by_type = nodes_by_type
        self.edges_by_label = edges_by_label

    @classmethod
    def capture(cls, graph: Graph) -> "GraphDelta":
        """Snapshot the delta of ``graph`` relative to its current base.

        Called by :meth:`Graph.delta_since_base` under the graph's lock.
        Node/edge objects are shared by reference — they are immutable
        (edges) or append-only metadata (nodes), so sharing is safe.
        """
        if graph.base_generation is None:
            raise GraphError("cannot capture a delta before a base snapshot exists")
        num_base_nodes = graph._base_num_nodes
        num_base_edges = graph._base_num_edges
        nodes = tuple(graph._nodes[num_base_nodes:])
        edges = tuple(graph._edges[num_base_edges:])
        # Adjacency suffixes: replaying the new edges in id order appends
        # entries exactly as Graph.add_edge did, per touched node.
        adjacency: Dict[int, List[AdjacencyEntry]] = {}
        for edge in edges:
            adjacency.setdefault(edge.source, []).append((edge.id, edge.target, True))
            if edge.target != edge.source:
                adjacency.setdefault(edge.target, []).append((edge.id, edge.source, False))
        for node in nodes:
            adjacency.setdefault(node.id, [])
        nodes_by_label: Dict[str, List[int]] = {}
        nodes_by_type: Dict[str, List[int]] = {}
        for node in nodes:
            nodes_by_label.setdefault(node.label, []).append(node.id)
            for type_name in node.types:
                nodes_by_type.setdefault(type_name, []).append(node.id)
        edges_by_label: Dict[str, List[int]] = {}
        for edge in edges:
            edges_by_label.setdefault(edge.label, []).append(edge.id)
        weight_overrides = dict(graph._weight_overrides)
        override_edges = {edge_id: graph._edges[edge_id] for edge_id in weight_overrides}
        return cls(
            base_generation=graph.base_generation,
            generation=graph.generation,
            num_base_nodes=num_base_nodes,
            num_base_edges=num_base_edges,
            nodes=nodes,
            edges=edges,
            weight_overrides=weight_overrides,
            override_edges=override_edges,
            adjacency={node_id: tuple(entries) for node_id, entries in adjacency.items()},
            nodes_by_label={label: tuple(ids) for label, ids in nodes_by_label.items()},
            nodes_by_type={name: tuple(ids) for name, ids in nodes_by_type.items()},
            edges_by_label={label: tuple(ids) for label, ids in edges_by_label.items()},
        )

    @property
    def size(self) -> int:
        """Mutation count: appended nodes + appended edges + weight overrides."""
        return len(self.nodes) + len(self.edges) + len(self.weight_overrides)

    def __getstate__(self) -> Dict[str, Any]:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for slot in self.__slots__:
            setattr(self, slot, state[slot])

    def __repr__(self) -> str:
        return (
            f"GraphDelta(base_gen={self.base_generation}, gen={self.generation}, "
            f"+{len(self.nodes)} nodes, +{len(self.edges)} edges, "
            f"{len(self.weight_overrides)} overrides)"
        )


class OverlayGraph:
    """A frozen read view merging a CSR base with a :class:`GraphDelta`.

    Implements the full ``GraphBackend`` read surface (plus the
    ``out_edges``/``in_edges``/``nodes``/``edges``/``find_nodes``/describe
    helpers the BGP evaluator and scorers use), so the 8 CTP algorithms
    run over it unchanged.  Reads are bit-identical to a full re-freeze of
    base ∪ delta: ids are dense across the boundary, adjacency and index
    sequences concatenate base-then-delta in insertion order, and
    :meth:`edge` substitutes the delta's weight-overridden edge objects
    for their stale base-range originals.

    The view is immutable (``add_node``/``add_edge`` raise) and caches
    merged per-node adjacency like the CSR backend does, so repeated
    frontier expansion stays cheap.
    """

    backend = "overlay"
    frozen = True

    def __init__(self, base: Any, delta: GraphDelta, view_source: Optional[Graph] = None):
        if delta.num_base_nodes != base.num_nodes or delta.num_base_edges != base.num_edges:
            raise GraphError(
                f"delta was captured against a base of {delta.num_base_nodes} nodes / "
                f"{delta.num_base_edges} edges, got one of {base.num_nodes} / {base.num_edges}"
            )
        base_generation = getattr(base, "base_generation", None)
        if base_generation is not None and base_generation != delta.base_generation:
            raise GraphError(
                f"delta base generation {delta.base_generation} does not match "
                f"base snapshot generation {base_generation}"
            )
        self.name = base.name
        self._base = base
        self._delta = delta
        #: The mutable Graph this view was pinned from (None when the view
        #: was assembled elsewhere, e.g. inside a pool worker).
        self.view_source = view_source
        self._num_nodes = base.num_nodes + len(delta.nodes)
        self._num_edges = base.num_edges + len(delta.edges)
        self._adj_cache: Dict[int, Tuple[AdjacencyEntry, ...]] = {}
        self._neighbor_cache: Dict[int, Tuple[int, ...]] = {}
        self._filtered_cache: Dict[Tuple[int, FrozenSet[str]], Tuple[AdjacencyEntry, ...]] = {}

    # ------------------------------------------------------------------
    # generation identity
    # ------------------------------------------------------------------
    @property
    def base(self) -> Any:
        return self._base

    @property
    def delta(self) -> GraphDelta:
        return self._delta

    @property
    def generation(self) -> int:
        """Source generation this view pins (the delta's capture generation)."""
        return self._delta.generation

    @property
    def base_generation(self) -> int:
        return self._delta.base_generation

    # ------------------------------------------------------------------
    # immutability
    # ------------------------------------------------------------------
    def add_node(self, *args: Any, **kwargs: Any) -> int:
        raise GraphError(
            "cannot add_node to a frozen OverlayGraph; "
            "mutate the source Graph and pin a new read_view()"
        )

    def add_edge(self, *args: Any, **kwargs: Any) -> int:
        raise GraphError(
            "cannot add_edge to a frozen OverlayGraph; "
            "mutate the source Graph and pin a new read_view()"
        )

    def freeze(self, force: bool = False) -> "OverlayGraph":
        """Already frozen — an overlay is itself an immutable view."""
        return self

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def node(self, node_id: int) -> Node:
        if node_id >= self._delta.num_base_nodes:
            try:
                return self._delta.nodes[node_id - self._delta.num_base_nodes]
            except IndexError:
                raise GraphError(f"unknown node id {node_id}") from None
        return self._base.node(node_id)

    def edge(self, edge_id: int) -> Edge:
        delta = self._delta
        if edge_id >= delta.num_base_edges:
            try:
                return delta.edges[edge_id - delta.num_base_edges]
            except IndexError:
                raise GraphError(f"unknown edge id {edge_id}") from None
        # Weight-overridden base edges: the base snapshot still holds the
        # edge object frozen with it — substitute the delta's current one.
        overridden = delta.override_edges.get(edge_id)
        if overridden is not None:
            return overridden
        return self._base.edge(edge_id)

    def nodes(self) -> Iterator[Node]:
        yield from self._base.nodes()
        yield from self._delta.nodes

    def edges(self) -> Iterator[Edge]:
        override_edges = self._delta.override_edges
        if override_edges:
            for edge in self._base.edges():
                yield override_edges.get(edge.id, edge)
        else:
            yield from self._base.edges()
        yield from self._delta.edges

    def node_ids(self) -> range:
        return range(self._num_nodes)

    def edge_ids(self) -> range:
        return range(self._num_edges)

    # ------------------------------------------------------------------
    # adjacency (base entries precede delta entries, both in edge-id order —
    # exactly the append order a full re-freeze would have recorded)
    # ------------------------------------------------------------------
    def adjacent(self, node_id: int) -> Tuple[AdjacencyEntry, ...]:
        cached = self._adj_cache.get(node_id)
        if cached is None:
            extra = self._delta.adjacency.get(node_id)
            if node_id < self._delta.num_base_nodes:
                base_entries = tuple(self._base.adjacent(node_id))
                cached = base_entries if not extra else base_entries + extra
            elif node_id < self._num_nodes:
                cached = extra or ()
            else:
                raise GraphError(f"unknown node id {node_id}")
            self._adj_cache[node_id] = cached
        return cached

    def adjacent_filtered(
        self, node_id: int, labels: Optional[Iterable[str]] = None
    ) -> Tuple[AdjacencyEntry, ...]:
        if labels is None:
            return self.adjacent(node_id)
        if not isinstance(labels, frozenset):
            labels = frozenset(labels)
        key = (node_id, labels)
        cached = self._filtered_cache.get(key)
        if cached is None:
            extra = self._delta.adjacency.get(node_id, ())
            if node_id < self._delta.num_base_nodes:
                filtered: Tuple[AdjacencyEntry, ...] = tuple(
                    self._base.adjacent_filtered(node_id, labels)
                )
            else:
                filtered = ()
            if extra:
                filtered += tuple(
                    entry for entry in extra if self.edge_label(entry[0]) in labels
                )
            self._filtered_cache[key] = cached = filtered
        return cached

    def degree(self, node_id: int) -> int:
        return len(self.adjacent(node_id))

    def neighbor_ids(self, node_id: int) -> Tuple[int, ...]:
        cached = self._neighbor_cache.get(node_id)
        if cached is None:
            extra = self._delta.adjacency.get(node_id)
            if node_id < self._delta.num_base_nodes and extra:
                # Base neighbours are already first-occurrence-deduped in
                # adjacency order; folding the delta's others through the
                # same dict preserves the full-freeze dedup order.
                merged = dict.fromkeys(self._base.neighbor_ids(node_id))
                merged.update(dict.fromkeys(other for _, other, _ in extra))
                cached = tuple(merged)
            elif node_id < self._delta.num_base_nodes:
                cached = tuple(self._base.neighbor_ids(node_id))
            else:
                cached = tuple(dict.fromkeys(other for _, other, _ in self.adjacent(node_id)))
            self._neighbor_cache[node_id] = cached
        return cached

    def neighbors(self, node_id: int) -> List[int]:
        return list(self.neighbor_ids(node_id))

    def out_edges(self, node_id: int) -> List[Edge]:
        return [self.edge(e) for e, _, outgoing in self.adjacent(node_id) if outgoing]

    def in_edges(self, node_id: int) -> List[Edge]:
        return [self.edge(e) for e, _, outgoing in self.adjacent(node_id) if not outgoing]

    # ------------------------------------------------------------------
    # per-edge scalar accessors
    # ------------------------------------------------------------------
    def edge_weight(self, edge_id: int) -> float:
        delta = self._delta
        if edge_id >= delta.num_base_edges:
            return delta.edges[edge_id - delta.num_base_edges].weight
        override = delta.weight_overrides.get(edge_id)
        if override is not None:
            return override
        return self._base.edge_weight(edge_id)

    def edge_label(self, edge_id: int) -> str:
        delta = self._delta
        if edge_id >= delta.num_base_edges:
            return delta.edges[edge_id - delta.num_base_edges].label
        return self._base.edge_label(edge_id)

    def edge_endpoints(self, edge_id: int) -> Tuple[int, int]:
        delta = self._delta
        if edge_id >= delta.num_base_edges:
            edge = delta.edges[edge_id - delta.num_base_edges]
            return edge.source, edge.target
        return self._base.edge_endpoints(edge_id)

    def edge_source(self, edge_id: int) -> int:
        delta = self._delta
        if edge_id >= delta.num_base_edges:
            return delta.edges[edge_id - delta.num_base_edges].source
        return self._base.edge_source(edge_id)

    def edge_target(self, edge_id: int) -> int:
        delta = self._delta
        if edge_id >= delta.num_base_edges:
            return delta.edges[edge_id - delta.num_base_edges].target
        return self._base.edge_target(edge_id)

    # ------------------------------------------------------------------
    # label / type indexes (base ids then delta ids — both ascending, so the
    # concatenation is exactly the full-freeze insertion order)
    # ------------------------------------------------------------------
    def nodes_with_label(self, label: str) -> List[int]:
        combined = self._base.nodes_with_label(label)
        combined.extend(self._delta.nodes_by_label.get(label, ()))
        return combined

    def nodes_with_type(self, type_name: str) -> List[int]:
        combined = self._base.nodes_with_type(type_name)
        combined.extend(self._delta.nodes_by_type.get(type_name, ()))
        return combined

    def edges_with_label(self, label: str) -> List[int]:
        combined = self._base.edges_with_label(label)
        combined.extend(self._delta.edges_by_label.get(label, ()))
        return combined

    def node_labels(self) -> List[str]:
        labels = list(self._base.node_labels())
        seen = set(labels)
        labels.extend(label for label in self._delta.nodes_by_label if label not in seen)
        return labels

    def edge_labels(self) -> List[str]:
        labels = list(self._base.edge_labels())
        seen = set(labels)
        labels.extend(label for label in self._delta.edges_by_label if label not in seen)
        return labels

    def find_nodes(self, predicate: Callable[[Node], bool]) -> List[int]:
        return [node.id for node in self.nodes() if predicate(node)]

    def find_node_by_label(self, label: str) -> int:
        ids = self.nodes_with_label(label)
        if len(ids) != 1:
            raise GraphError(f"expected exactly one node labelled {label!r}, found {len(ids)}")
        return ids[0]

    # ------------------------------------------------------------------
    # materialization (equivalence tests, slow-path snapshotting)
    # ------------------------------------------------------------------
    def to_graph(self) -> Graph:
        """Rebuild a mutable :class:`Graph` holding base ∪ delta."""
        graph = Graph(self.name)
        for node in self.nodes():
            node_id = graph.add_node(node.label, node.types)
            if node.props:
                graph._nodes[node_id].props.update(node.props)
        for edge in self.edges():
            edge_id = graph.add_edge(edge.source, edge.target, edge.label, edge.weight)
            if edge.props:
                graph._edges[edge_id].props.update(edge.props)
        return graph

    def materialize(self) -> Any:
        """A full CSR snapshot of base ∪ delta (one frozen file, no overlay).

        The slow path: used when an overlay must become a standalone
        snapshot (e.g. the non-pooled process dispatcher serializing the
        view).  The pooled path never calls this — it ships the delta.
        """
        return self.to_graph().freeze()

    # ------------------------------------------------------------------
    # display helpers
    # ------------------------------------------------------------------
    def describe_edge(self, edge_id: int) -> str:
        edge = self.edge(edge_id)
        source = self.node(edge.source).label or str(edge.source)
        target = self.node(edge.target).label or str(edge.target)
        label = edge.label or "-"
        return f"{source} -[{label}]-> {target}"

    def describe_tree(self, edge_ids: Iterable[int]) -> str:
        parts = sorted(self.describe_edge(e) for e in edge_ids)
        if not parts:
            return "(single node)"
        return "; ".join(parts)

    def __repr__(self) -> str:
        name = f" {self.name!r}" if self.name else ""
        return (
            f"OverlayGraph({name} nodes={self.num_nodes}, edges={self.num_edges}, "
            f"base_gen={self.base_generation}, gen={self.generation})"
        )
