"""Graph traversal utilities: BFS/Dijkstra distances, balls, reachability.

Shared by the workload samplers, the baselines, and available to library
users for pre/post-processing around connection search (e.g. checking how
far apart the seeds of a CTP are before deciding on a ``MAX`` filter).

All functions take a ``direction``:

* ``"both"`` — undirected traversal (the CTP default, requirement R3);
* ``"out"`` — follow edge directions (the UNI/baseline regime);
* ``"in"`` — against edge directions (useful to reach a target set).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import GraphError
from repro.graph.graph import Graph

_DIRECTIONS = ("both", "out", "in")


def _check_direction(direction: str) -> None:
    if direction not in _DIRECTIONS:
        raise GraphError(f"unknown direction {direction!r}; use one of {_DIRECTIONS}")


def _follow(outgoing: bool, direction: str) -> bool:
    if direction == "both":
        return True
    if direction == "out":
        return outgoing
    return not outgoing


def bfs_distances(
    graph: Graph,
    sources: Iterable[int],
    direction: str = "both",
    max_hops: Optional[int] = None,
) -> Dict[int, int]:
    """Hop distance from the nearest source to every reachable node."""
    _check_direction(direction)
    distances: Dict[int, int] = {}
    queue = deque()
    for source in sources:
        graph.node(source)
        if source not in distances:
            distances[source] = 0
            queue.append(source)
    if direction == "both" and getattr(graph, "frozen", False):
        # CSR fast path: the frozen backend caches the distinct-neighbor
        # tuple per node, so an undirected BFS never touches edge records.
        while queue:
            node = queue.popleft()
            depth = distances[node]
            if max_hops is not None and depth >= max_hops:
                continue
            for other in graph.neighbor_ids(node):
                if other not in distances:
                    distances[other] = depth + 1
                    queue.append(other)
        return distances
    while queue:
        node = queue.popleft()
        depth = distances[node]
        if max_hops is not None and depth >= max_hops:
            continue
        for _, other, outgoing in graph.adjacent(node):
            if other not in distances and _follow(outgoing, direction):
                distances[other] = depth + 1
                queue.append(other)
    return distances


def dijkstra_distances(
    graph: Graph,
    sources: Iterable[int],
    direction: str = "both",
) -> Dict[int, float]:
    """Weighted distance from the nearest source to every reachable node."""
    _check_direction(direction)
    distances: Dict[int, float] = {}
    heap: List[Tuple[float, int]] = []
    for source in sources:
        graph.node(source)
        distances[source] = 0.0
        heap.append((0.0, source))
    heapq.heapify(heap)
    while heap:
        distance, node = heapq.heappop(heap)
        if distance > distances.get(node, float("inf")):
            continue
        for edge_id, other, outgoing in graph.adjacent(node):
            if not _follow(outgoing, direction):
                continue
            candidate = distance + graph.edge_weight(edge_id)
            if candidate < distances.get(other, float("inf")):
                distances[other] = candidate
                heapq.heappush(heap, (candidate, other))
    return distances


def reachable_set(graph: Graph, source: int, direction: str = "both") -> Set[int]:
    """All nodes reachable from ``source``."""
    return set(bfs_distances(graph, [source], direction))


def ball(graph: Graph, center: int, radius: int, direction: str = "both") -> List[int]:
    """Nodes within ``radius`` hops of ``center``, in BFS order."""
    distances = bfs_distances(graph, [center], direction, max_hops=radius)
    return sorted(distances, key=lambda node: (distances[node], node))


def eccentricity_between(graph: Graph, seed_sets: Iterable[Iterable[int]], direction: str = "both") -> Optional[int]:
    """The largest pairwise nearest-seed distance between the seed sets.

    A cheap a-priori bound on the size of the smallest connecting tree:
    if the sets are far apart, a CTP with a small ``MAX`` filter cannot
    have results.  ``None`` when some pair of sets is disconnected.
    """
    seed_sets = [list(s) for s in seed_sets]
    worst = 0
    for index, seeds in enumerate(seed_sets):
        distances = bfs_distances(graph, seeds, direction)
        for other_index, other_seeds in enumerate(seed_sets):
            if other_index == index:
                continue
            best = min((distances.get(node) for node in other_seeds if node in distances), default=None)
            if best is None:
                return None
            worst = max(worst, best)
    return worst
