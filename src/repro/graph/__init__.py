"""Graph substrate: the data model of Definition 2.1.

A :class:`~repro.graph.graph.Graph` is a directed multigraph whose nodes and
edges carry a label, optional types, and arbitrary properties.  Connection
search (Section 4 of the paper) traverses edges in **both** directions, so
adjacency is indexed bidirectionally.
"""

from repro.graph.graph import Edge, Graph, Node
from repro.graph.backend import CSRGraph, GraphBackend, backend_name, freeze, resolve_backend
from repro.graph.builder import GraphBuilder, graph_from_triples
from repro.graph.delta import GraphDelta, OverlayGraph
from repro.graph.io import load_graph_json, load_graph_tsv, save_graph_json, save_graph_tsv
from repro.graph.snapshot import ensure_snapshot, load_snapshot, save_snapshot
from repro.graph.stats import GraphStats, connected_components, graph_stats
from repro.graph.traversal import (
    ball,
    bfs_distances,
    dijkstra_distances,
    eccentricity_between,
    reachable_set,
)

__all__ = [
    "CSRGraph",
    "Edge",
    "Graph",
    "GraphBackend",
    "GraphBuilder",
    "GraphDelta",
    "GraphStats",
    "Node",
    "OverlayGraph",
    "backend_name",
    "ball",
    "freeze",
    "resolve_backend",
    "bfs_distances",
    "connected_components",
    "dijkstra_distances",
    "eccentricity_between",
    "ensure_snapshot",
    "graph_from_triples",
    "graph_stats",
    "load_graph_json",
    "load_graph_tsv",
    "load_snapshot",
    "reachable_set",
    "save_graph_json",
    "save_graph_tsv",
    "save_snapshot",
]
