"""Graph statistics: degree distributions, component structure, summaries.

Used by the real-world workload generator (to verify the synthetic
YAGO/DBPedia substitutes are scale-free) and by the benchmark reports.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Dict, List

from repro.graph.graph import Graph


@dataclass
class GraphStats:
    """Summary statistics of a graph."""

    num_nodes: int
    num_edges: int
    num_components: int
    max_degree: int
    mean_degree: float
    degree_histogram: Dict[int, int] = field(repr=False)
    node_label_count: int = 0
    edge_label_count: int = 0

    def format(self) -> str:
        return (
            f"nodes={self.num_nodes} edges={self.num_edges} "
            f"components={self.num_components} max_degree={self.max_degree} "
            f"mean_degree={self.mean_degree:.2f} "
            f"node_labels={self.node_label_count} edge_labels={self.edge_label_count}"
        )


def connected_components(graph: Graph) -> List[List[int]]:
    """Undirected connected components, each a sorted list of node ids."""
    seen = [False] * graph.num_nodes
    components: List[List[int]] = []
    for start in graph.node_ids():
        if seen[start]:
            continue
        component = []
        queue = deque([start])
        seen[start] = True
        while queue:
            node = queue.popleft()
            component.append(node)
            for _, other, _ in graph.adjacent(node):
                if not seen[other]:
                    seen[other] = True
                    queue.append(other)
        components.append(sorted(component))
    return components


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Map degree -> number of nodes with that degree."""
    return dict(Counter(graph.degree(node) for node in graph.node_ids()))


def graph_stats(graph: Graph) -> GraphStats:
    """Compute a :class:`GraphStats` summary for ``graph``."""
    histogram = degree_histogram(graph)
    degrees = [graph.degree(node) for node in graph.node_ids()]
    max_degree = max(degrees, default=0)
    mean_degree = (sum(degrees) / len(degrees)) if degrees else 0.0
    return GraphStats(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_components=len(connected_components(graph)),
        max_degree=max_degree,
        mean_degree=mean_degree,
        degree_histogram=histogram,
        node_label_count=len(graph.node_labels()),
        edge_label_count=len(graph.edge_labels()),
    )
