"""Small shared utilities: deadlines, bitmask helpers, deterministic RNG.

These are internal (underscore module); the public API re-exports nothing
from here.
"""

from __future__ import annotations

import itertools
import time
from typing import Iterable, Iterator, Optional


class Deadline:
    """A monotonic-clock deadline shared across the stages of an evaluation.

    ``Deadline(None)`` never expires.  Searches poll :meth:`expired` in their
    hot loops; the helper is deliberately branch-cheap.
    """

    __slots__ = ("_limit", "_start")

    def __init__(self, seconds: Optional[float]):
        self._start = time.monotonic()
        self._limit = None if seconds is None else self._start + float(seconds)

    @classmethod
    def never(cls) -> "Deadline":
        return cls(None)

    def expired(self) -> bool:
        return self._limit is not None and time.monotonic() >= self._limit

    def elapsed(self) -> float:
        """Seconds since the deadline was created."""
        return time.monotonic() - self._start

    def remaining(self) -> Optional[float]:
        """Seconds left, or ``None`` for an unbounded deadline."""
        if self._limit is None:
            return None
        return max(0.0, self._limit - time.monotonic())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self._limit is None:
            return "Deadline(unbounded)"
        return f"Deadline(remaining={self.remaining():.3f}s)"


def popcount(mask: int) -> int:
    """Number of set bits in ``mask`` (seed-signature cardinality)."""
    return mask.bit_count()


def bits(mask: int) -> Iterator[int]:
    """Yield the indexes of the set bits of ``mask``, lowest first."""
    index = 0
    while mask:
        if mask & 1:
            yield index
        mask >>= 1
        index += 1


def mask_of(indexes: Iterable[int]) -> int:
    """Build a bitmask with the given bit indexes set."""
    mask = 0
    for index in indexes:
        mask |= 1 << index
    return mask


def full_mask(width: int) -> int:
    """A mask with bits ``0..width-1`` set."""
    return (1 << width) - 1


class Counter:
    """A monotonically increasing ticket dispenser (FIFO tie-breaking)."""

    __slots__ = ("_it",)

    def __init__(self) -> None:
        self._it = itertools.count()

    def next(self) -> int:
        return next(self._it)


def stable_unique(items: Iterable) -> list:
    """Deduplicate while preserving first-seen order (hashable items)."""
    seen = set()
    out = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out
