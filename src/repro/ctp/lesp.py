"""LESP — Limited Edge-Set Pruning (Section 4.6).

LESP maintains, for every node ``n``, a *seed signature* ``ss_n``: a bitmask
of the seed sets from which an ``(n, s)``-rooted path (Definition 4.4) has
reached ``n`` so far.  Edge-set pruning is then *limited*: a tree rooted in
``n`` is spared from pruning when

* ``popcount(ss_n) >= 3`` — paths from at least three different seed sets
  have met at ``n``, and
* ``deg(n) >= 3`` — the graph allows three or more rooted paths to meet, and
* no identical tree rooted at ``n`` exists yet.

Guarantee (Property 6): every ``(u, n)``-rooted merge, ``u >= 3``, is found.
LESP alone remains incomplete for results that are not rooted merges, e.g.
the two-branching-node result of Figure 6.
"""

from __future__ import annotations

from repro.ctp.engine import GAMFamilySearch


class LESPSearch(GAMFamilySearch):
    """ESP + the seed-signature pruning exception."""

    name = "lesp"
    edge_set_pruning = True
    mo_trees = False
    lesp_guard = True
