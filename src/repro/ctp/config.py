"""Search configuration: CTP filters (Section 2) and engine knobs.

The paper's CTP filters — ``UNI``, ``LABEL {l1..lk}``, ``MAX n``,
``SCORE sigma [TOP k]``, a per-CTP timeout, and ``LIMIT`` — are *pushed into*
the search (Section 4.8) rather than applied on materialized results, so
they all live on :class:`SearchConfig`, which every algorithm accepts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, FrozenSet, Optional, Union

from repro.errors import ConfigError

#: Dispatch modes accepted by ``SearchConfig.parallelism_mode``.
#: ``"auto"`` defers the choice to the cost model per query
#: (:func:`repro.query.costmodel.choose_mode`).
PARALLELISM_MODES = ("thread", "process", "auto")


class _Wildcard:
    """Sentinel for a seed set equal to all graph nodes (Section 4.9)."""

    def __repr__(self) -> str:
        return "WILDCARD"

    def __reduce__(self):
        # Pickle as a reference to the module-level singleton so identity
        # checks (``seed is WILDCARD``) survive crossing a process boundary
        # (the process-pool dispatcher ships seed sets to workers).
        return "WILDCARD"


#: Pass this instead of a node collection to make a seed set the whole of N.
WILDCARD = _Wildcard()

#: A score function maps (graph, edge_ids, node_ids) to a float; higher is
#: better (Section 2, ``SCORE sigma``).
ScoreFunction = Callable[["object", frozenset, frozenset], float]

#: Queue orders: "size" (smallest tree first — the paper's experimental
#: setting, Section 5.4) or a callable mapping a SearchTree to a sort key.
OrderSpec = Union[str, Callable]


@dataclass(frozen=True)
class SearchConfig:
    """Configuration shared by all CTP evaluation algorithms.

    Parameters
    ----------
    uni:
        Only build unidirectional trees — a result must have a node from
        which directed paths reach every seed (``UNI`` filter).
    labels:
        When set, result trees may only use edges carrying these labels
        (``LABEL`` filter).
    max_edges:
        Upper bound on the number of edges of any built tree (``MAX n``).
    timeout:
        Per-CTP evaluation budget in seconds (the paper's ``T``); ``None``
        means unbounded.
    deadline:
        Whole-*query* wall-clock budget in seconds, enforced by the
        evaluator (standalone engine runs ignore it): each CTP's effective
        ``timeout`` is capped to the budget remaining when its job is
        built, so no single CTP can spend the whole query's allowance —
        the per-query deadline discipline a serving front-end needs
        ("Complexity of Evaluating GQL Queries" motivates how wildly
        per-fragment cost varies).  Deadline-truncated result sets are
        flagged ``timed_out`` and never memoized, exactly like ``timeout``
        truncation.  ``None`` (default) means no query budget.
    limit:
        Stop after this many results have been found (the ``LIMIT`` used to
        align with QGSTP in Section 5.4.3).
    score / top_k:
        ``SCORE sigma [TOP k]``: score every result with ``score``; when
        ``top_k`` is set, retain only the k best.  ``top_k`` requires
        ``score``.
    order:
        Priority-queue order for Grow opportunities; ``"size"`` favours the
        smallest trees (paper default), ``"score"`` uses ``score`` as a
        guidance heuristic (Section 4.8), or pass a callable.
    balanced_queues:
        Section 4.9 (ii): use one priority queue per seed-coverage signature
        and always grow from the least-filled queue.  ``"auto"`` enables the
        optimization when seed set sizes are skewed by more than
        ``balance_ratio`` or a wildcard seed set is present.
    max_trees:
        Memory safety valve: abort (returning partial results) after this
        many retained trees.
    backend:
        Graph storage backend the search should run against
        (:mod:`repro.graph.backend`): ``"dict"`` uses the graph exactly as
        passed, ``"csr"`` freezes it into the compressed-sparse-row
        representation first (memoized per graph), ``"auto"`` (default)
        keeps whichever representation the caller provided.
    interning:
        Use the hash-consed edge-set pool for tree bookkeeping
        (:mod:`repro.ctp.interning`; default).  ``False`` falls back to the
        seed frozenset representation — same results, slower history checks;
        kept as the baseline of ``python -m repro.bench interning`` and the
        equivalence suite.
    dense_ids:
        Use the dense per-search node-id space (:mod:`repro.ctp.idremap`;
        default): node bitmasks are sized by |nodes touched by this
        search| instead of the graph's largest node id, and the interning
        pool spills its hot maps to flat-array storage.  The million-node
        enabler — on large (or sparse-hugely-numbered) graphs the legacy
        masks are the dominant memory and Merge1 cost.  ``False`` restores
        the legacy global-id masks and dict-based pool as the A/B baseline
        of ``python -m repro.bench scale``.  Representation-only: rows are
        bit-identical either way (``tests/test_dense_ids.py``).
    strict_merge2 (ablation):
        Use the *literal* Merge2 of Section 4.2 — ``sat(t1) ∩ sat(t2) = ∅``
        — instead of the relaxed reading this library argues for (overlap
        allowed through the shared root; DESIGN.md §1.3).  With the strict
        condition GAM loses completeness on results whose internal
        branching node is a seed; exposed to make that measurable.
    mo_inject_always (ablation):
        Inject Mo copies for *every* new tree (Algorithm 3 read literally)
        instead of only when seed coverage grew (the Section 4.5 text).
        Same results, strictly more work; exposed to quantify the cost.
    shared_context:
        Evaluator-level knob (ignored by standalone engine runs): share one
        query-scoped :class:`~repro.ctp.interning.SearchContext` — edge-set
        pool, per-root result cache, cross-CTP memo — across all CTP
        evaluations of a query (default).  ``False`` restores the
        pool-per-CTP behaviour as the A/B baseline of ``python -m
        repro.bench query-context``.  Representation-only: the produced
        rows are identical either way.
    parallelism:
        Evaluator-level knob (ignored by standalone engine runs): dispatch
        the independent CTP evaluations of a query to a worker pool of
        this many workers (:mod:`repro.query.parallel`; default 1 = serial
        dispatch).  Values above 1 make ``evaluate_query`` create its
        query-scoped context *thread-safe* (sharded pool, locked caches).
        Dispatch-only: result rows are bit-identical to serial evaluation
        regardless of worker count — an explicitly passed non-thread-safe
        context silently falls back to serial dispatch under thread mode.
        Must be >= 1; anything else raises :class:`~repro.errors.ConfigError`.
    parallelism_mode:
        How ``parallelism > 1`` fans out: ``"thread"`` (default) uses a
        ``ThreadPoolExecutor`` over the shared thread-safe context — wall-
        clock overlap for deadline-bounded CTPs, no extra processes;
        ``"process"`` uses a ``ProcessPoolExecutor`` whose workers each
        load the graph once from an mmap-shared CSR snapshot
        (:mod:`repro.graph.snapshot`) and evaluate CTPs on a private
        context — real multi-core overlap for CPU-bound complete searches
        under the GIL.  Rows are bit-identical to serial either way.
        ``"auto"`` lets the evaluator pick serial/thread/process per query
        from the cost model's estimated total cost vs. dispatch-overhead
        constants (:mod:`repro.query.costmodel`).
    scheduling:
        Evaluator-level knob (ignored by standalone engine runs): turn on
        cost-model-driven scheduling (:mod:`repro.query.costmodel`) —
        longest-first CTP submission, execution-time deadline-budget
        rebalancing (unspent wall budget from fast CTPs flows to
        still-running slow ones), and pipelined step-(A)→(B) overlap
        under thread dispatch.  Dispatch-only, absent from the memo
        fingerprint: result rows are bit-identical to serial evaluation
        with the flag off.  Default off; ``parallelism_mode="auto"``
        implies the cost model for *mode selection* regardless.
    """

    uni: bool = False
    labels: Optional[FrozenSet[str]] = None
    max_edges: Optional[int] = None
    timeout: Optional[float] = None
    deadline: Optional[float] = None
    limit: Optional[int] = None
    score: Optional[ScoreFunction] = None
    top_k: Optional[int] = None
    order: OrderSpec = "size"
    balanced_queues: Union[bool, str] = "auto"
    balance_ratio: float = 32.0
    max_trees: Optional[int] = None
    backend: str = "auto"
    interning: bool = True
    dense_ids: bool = True
    strict_merge2: bool = False
    mo_inject_always: bool = False
    shared_context: bool = True
    parallelism: int = 1
    parallelism_mode: str = "thread"
    scheduling: bool = False

    def __post_init__(self) -> None:
        if self.top_k is not None and self.score is None:
            raise ConfigError("top_k requires a score function (SCORE sigma TOP k)")
        if self.top_k is not None and self.top_k <= 0:
            raise ConfigError("top_k must be positive")
        if self.limit is not None and self.limit <= 0:
            raise ConfigError("limit must be positive")
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigError("deadline must be positive (seconds of query wall-clock budget)")
        if self.max_edges is not None and self.max_edges < 0:
            raise ConfigError("max_edges must be >= 0")
        if isinstance(self.order, str) and self.order not in ("size", "score"):
            raise ConfigError(f"unknown order {self.order!r} (use 'size', 'score', or a callable)")
        if self.order == "score" and self.score is None:
            raise ConfigError("order='score' requires a score function")
        if not isinstance(self.parallelism, int) or self.parallelism < 1:
            raise ConfigError(
                f"parallelism must be an integer >= 1 (1 = serial CTP dispatch), "
                f"got {self.parallelism!r}"
            )
        if self.parallelism_mode not in PARALLELISM_MODES:
            raise ConfigError(
                f"unknown parallelism_mode {self.parallelism_mode!r} "
                f"(use one of {', '.join(PARALLELISM_MODES)})"
            )
        if not isinstance(self.dense_ids, bool):
            raise ConfigError(
                f"dense_ids must be a bool (dense per-search node ids on/off), "
                f"got {self.dense_ids!r}"
            )
        if not isinstance(self.scheduling, bool):
            raise ConfigError(
                f"scheduling must be a bool (cost-model scheduling on/off), "
                f"got {self.scheduling!r}"
            )
        if self.backend not in ("auto", "dict", "csr"):
            raise ConfigError(f"unknown backend {self.backend!r} (use 'auto', 'dict', or 'csr')")
        if self.labels is not None:
            object.__setattr__(self, "labels", frozenset(self.labels))

    def with_(self, **changes) -> "SearchConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **changes)


#: The default configuration (no filters, paper's smallest-first order).
DEFAULT_CONFIG = SearchConfig()
