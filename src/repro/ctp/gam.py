"""GAM — Grow and Aggressive Merge (Section 4.2, after [Anadiotis et al. 2022]).

GAM distinguishes a root in every tree it builds.  Grow opportunities are
kept in a priority queue; each popped ``(tree, edge)`` pair extends the tree
from its root, and every new tree is *aggressively merged* with all
compatible same-root trees (conditions Merge1 and Merge2).

Properties established by the paper and verified in our tests:

* **Property 1** — GAM is complete (finds every CTP result, given time).
* **Property 2** — every result GAM reports is minimal by construction, so
  no post-hoc minimization is needed (unlike the BFT family).

GAM discards all but the first provenance built for a given *rooted tree*;
it may still build several rooted trees over the same edge set, which is the
redundancy ESP (Section 4.4) attacks.
"""

from __future__ import annotations

from repro.ctp.engine import GAMFamilySearch


class GAMSearch(GAMFamilySearch):
    """The complete GAM algorithm (no edge-set pruning)."""

    name = "gam"
    edge_set_pruning = False
    mo_trees = False
    lesp_guard = False
