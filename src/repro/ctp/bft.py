"""The breadth-first baselines: BFT, BFT-M, BFT-AM (Sections 4.1 and 4.3).

BFT views a tree as a plain set of edges (no root).  Starting from one-node
trees on every seed, each generation grows every tree with every edge
adjacent to *any* of its nodes (conditions Grow1/Grow2).  When a tree covers
all seed sets it must be **minimized** — non-seed leaf branches stripped —
before being reported, because growth from arbitrary nodes adds edges that
later turn out useless; this minimization (and the much larger number of
ways to build the same tree) is what makes the BFT family slow (Figure 10).

``BFT-M`` additionally merges every grown tree once with all compatible
partners; ``BFT-AM`` merges aggressively (cascading).  All three variants
are complete; all three need result minimization.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro._util import Deadline, full_mask
from repro.ctp.config import DEFAULT_CONFIG, SearchConfig
from repro.ctp.engine import _StopSearch, normalize_seed_sets
from repro.ctp.results import CTPResultSet, ResultTree
from repro.ctp.stats import SearchStats
from repro.errors import SearchError
from repro.graph.backend import resolve_backend
from repro.graph.graph import Graph


class _BFTTree:
    """An unrooted candidate tree: edge set, node set, seed coverage."""

    __slots__ = ("edges", "nodes", "sat", "weight")

    def __init__(self, edges: FrozenSet[int], nodes: FrozenSet[int], sat: int, weight: float):
        self.edges = edges
        self.nodes = nodes
        self.sat = sat
        self.weight = weight


class BFTSearch:
    """Breadth-first CTP search (complete, needs result minimization)."""

    name = "bft"
    #: "none" (plain BFT), "merge" (BFT-M), "aggressive" (BFT-AM).
    merge_mode = "none"

    def run(self, graph: Graph, seed_sets: Sequence, config: Optional[SearchConfig] = None) -> CTPResultSet:
        run = _BFTRun(graph, seed_sets, config or DEFAULT_CONFIG, self)
        return run.execute()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class BFTMSearch(BFTSearch):
    """BFT + one level of Merge on each grown tree (Section 4.3)."""

    name = "bft-m"
    merge_mode = "merge"


class BFTAMSearch(BFTSearch):
    """BFT + aggressive (cascading) Merge (Section 4.3)."""

    name = "bft-am"
    merge_mode = "aggressive"


class _BFTRun:
    def __init__(self, graph: Graph, seed_sets: Sequence, config: SearchConfig, algo: BFTSearch):
        self.graph = graph = resolve_backend(graph, config.backend)
        self.config = config
        self.algo = algo
        self.stats = SearchStats()
        normalized, self.wildcard_positions = normalize_seed_sets(graph, seed_sets)
        if self.wildcard_positions:
            raise SearchError(
                "the BFT baselines do not support N (wildcard) seed sets; "
                "use a GAM-family algorithm (Section 4.9)"
            )
        self.positions = normalized
        self.explicit_positions = [p for p, s in enumerate(normalized) if s is not None]
        self.explicit_sets: List[Tuple[int, ...]] = [normalized[p] for p in self.explicit_positions]
        self.full_sat = full_mask(len(self.explicit_sets))
        self.seed_mask: Dict[int, int] = {}
        for bit, nodes in enumerate(self.explicit_sets):
            for node in nodes:
                self.seed_mask[node] = self.seed_mask.get(node, 0) | (1 << bit)
        self.memory: Set[FrozenSet[int]] = set()  # every tree ever built
        self.trees_containing: Dict[int, List[_BFTTree]] = {}
        self.queue: deque = deque()
        self.result_keys: Set[FrozenSet[int]] = set()
        self.results: List[ResultTree] = []
        self.deadline = Deadline(config.timeout)
        self.timed_out = False

    # ------------------------------------------------------------------
    def execute(self) -> CTPResultSet:
        complete = True
        try:
            self._init_trees()
            self._main_loop()
        except _StopSearch as stop:
            complete = False
            self.timed_out = stop.timed_out
        self.stats.elapsed_seconds = self.deadline.elapsed()
        results = self.results
        if self.config.top_k is not None and len(results) > self.config.top_k:
            results = sorted(results, key=lambda r: (-(r.score or 0.0), r.size))[: self.config.top_k]
        return CTPResultSet(results=results, stats=self.stats, complete=complete, timed_out=self.timed_out, algorithm=self.algo.name)

    def _init_trees(self) -> None:
        if any(not seed_set for seed_set in self.explicit_sets):
            return
        for node, mask in self.seed_mask.items():
            tree = _BFTTree(frozenset(), frozenset((node,)), mask, 0.0)
            self.stats.init_trees += 1
            self._process(tree, allow_merge=False)

    def _main_loop(self) -> None:
        graph = self.graph
        seed_mask = self.seed_mask
        labels = self.config.labels
        max_edges = self.config.max_edges
        while self.queue:
            if self.deadline.expired():
                raise _StopSearch(timed_out=True)
            tree = self.queue.popleft()
            if max_edges is not None and len(tree.edges) + 1 > max_edges:
                continue
            for node in tree.nodes:
                for edge_id, other, _ in graph.adjacent_filtered(node, labels):
                    if other in tree.nodes:  # Grow1
                        continue
                    other_mask = seed_mask.get(other, 0)
                    if other_mask & tree.sat:  # Grow2
                        continue
                    grown = _BFTTree(
                        tree.edges | {edge_id},
                        tree.nodes | {other},
                        tree.sat | other_mask,
                        tree.weight + graph.edge_weight(edge_id),
                    )
                    self.stats.grows += 1
                    self._process(grown, allow_merge=self.algo.merge_mode != "none")

    # ------------------------------------------------------------------
    def _process(self, tree: _BFTTree, allow_merge: bool) -> None:
        """Register a candidate tree; report/minimize, queue, and merge."""
        if tree.edges in self.memory and tree.edges:
            return
        self.memory.add(tree.edges)
        self.stats.trees_kept += 1
        if self.config.max_trees is not None and self.stats.trees_kept > self.config.max_trees:
            raise _StopSearch()
        if tree.sat == self.full_sat:
            self._report(tree)
            return
        self.queue.append(tree)
        if self.algo.merge_mode != "none" and tree.edges:
            for node in tree.nodes:
                self.trees_containing.setdefault(node, []).append(tree)
        if allow_merge and tree.edges:
            self._merge(tree, cascade=self.algo.merge_mode == "aggressive")

    def _merge(self, tree: _BFTTree, cascade: bool) -> None:
        """Merge ``tree`` with all compatible partners (one level or cascade)."""
        work = deque([tree])
        max_edges = self.config.max_edges
        while work:
            if self.deadline.expired():
                raise _StopSearch(timed_out=True)
            t1 = work.popleft()
            candidates: List[_BFTTree] = []
            seen_ids: Set[int] = set()
            for node in t1.nodes:
                for partner in self.trees_containing.get(node, ()):
                    if id(partner) not in seen_ids:
                        seen_ids.add(id(partner))
                        candidates.append(partner)
            for tp in candidates:
                if tp is t1 or not tp.edges:
                    continue
                self.stats.merges_attempted += 1
                common = t1.nodes & tp.nodes
                if len(common) != 1:  # Merge1 analogue: share exactly one node
                    continue
                (shared,) = common
                if (t1.sat & tp.sat) & ~self.seed_mask.get(shared, 0):  # Merge2
                    continue
                if max_edges is not None and len(t1.edges) + len(tp.edges) > max_edges:
                    continue
                merged = _BFTTree(t1.edges | tp.edges, t1.nodes | tp.nodes, t1.sat | tp.sat, t1.weight + tp.weight)
                if merged.edges in self.memory:
                    self.stats.pruned_history += 1
                    continue
                self.stats.merges += 1
                self.memory.add(merged.edges)
                self.stats.trees_kept += 1
                if merged.sat == self.full_sat:
                    self._report(merged)
                    continue
                self.queue.append(merged)
                for node in merged.nodes:
                    self.trees_containing.setdefault(node, []).append(merged)
                if cascade:
                    work.append(merged)

    # ------------------------------------------------------------------
    def _report(self, tree: _BFTTree) -> None:
        """Minimize a covering tree (Section 4.1) and record the result."""
        edges, nodes, weight = self._minimize(tree)
        if edges in self.result_keys:
            self.stats.duplicate_results += 1
            return
        if self.config.uni and edges and not self._is_arborescence(edges, nodes):
            self.stats.pruned_filters += 1
            return
        self.result_keys.add(edges)
        seeds: List[Optional[int]] = [None] * len(self.positions)
        for node in nodes:
            mask = self.seed_mask.get(node, 0) & tree.sat
            for bit in range(len(self.explicit_sets)):
                if mask & (1 << bit):
                    seeds[self.explicit_positions[bit]] = node
        score = None
        if self.config.score is not None:
            score = self.config.score(self.graph, edges, nodes)
        self.results.append(ResultTree(edges=edges, nodes=nodes, seeds=tuple(seeds), weight=weight, score=score))
        self.stats.results_found += 1
        if self.config.limit is not None and self.stats.results_found >= self.config.limit:
            raise _StopSearch()

    def _minimize(self, tree: _BFTTree) -> Tuple[FrozenSet[int], FrozenSet[int], float]:
        """Strip non-seed leaf branches until every leaf is a seed."""
        graph = self.graph
        incident: Dict[int, List[int]] = {node: [] for node in tree.nodes}
        for edge_id in tree.edges:
            edge = graph.edge(edge_id)
            incident[edge.source].append(edge_id)
            incident[edge.target].append(edge_id)
        removed_edges: Set[int] = set()
        removed_nodes: Set[int] = set()
        candidates = deque(
            node for node, edge_list in incident.items() if len(edge_list) == 1 and node not in self.seed_mask
        )
        while candidates:
            leaf = candidates.popleft()
            if leaf in removed_nodes:
                continue
            live = [e for e in incident[leaf] if e not in removed_edges]
            if len(live) != 1:
                continue
            (edge_id,) = live
            removed_edges.add(edge_id)
            removed_nodes.add(leaf)
            other = graph.edge(edge_id).other(leaf)
            other_live = [e for e in incident[other] if e not in removed_edges]
            if len(other_live) == 1 and other not in self.seed_mask:
                candidates.append(other)
        edges = frozenset(e for e in tree.edges if e not in removed_edges)
        nodes = frozenset(n for n in tree.nodes if n not in removed_nodes)
        weight = sum(graph.edge_weight(e) for e in edges)
        return edges, nodes, weight

    def _is_arborescence(self, edges: FrozenSet[int], nodes: FrozenSet[int]) -> bool:
        """UNI post-filter: one node reaches all others along edge directions."""
        in_deg = {node: 0 for node in nodes}
        for edge_id in edges:
            in_deg[self.graph.edge(edge_id).target] += 1
        roots = [node for node, d in in_deg.items() if d == 0]
        return len(roots) == 1 and all(d <= 1 for d in in_deg.values())
