"""The breadth-first baselines: BFT, BFT-M, BFT-AM (Sections 4.1 and 4.3).

BFT views a tree as a plain set of edges (no root).  Starting from one-node
trees on every seed, each generation grows every tree with every edge
adjacent to *any* of its nodes (conditions Grow1/Grow2).  When a tree covers
all seed sets it must be **minimized** — non-seed leaf branches stripped —
before being reported, because growth from arbitrary nodes adds edges that
later turn out useless; this minimization (and the much larger number of
ways to build the same tree) is what makes the BFT family slow (Figure 10).

``BFT-M`` additionally merges every grown tree once with all compatible
partners; ``BFT-AM`` merges aggressively (cascading).  All three variants
are complete; all three need result minimization.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro._util import Deadline, full_mask
from repro.ctp.config import DEFAULT_CONFIG, SearchConfig
from repro.ctp.engine import _StopSearch, normalize_seed_sets
from repro.ctp.idremap import make_remap
from repro.ctp.interning import SearchContext, adopt_pool, pool_stats_delta
from repro.ctp.results import CTPResultSet, ResultTree, materialize_seeds
from repro.ctp.stats import SearchStats
from repro.errors import SearchError
from repro.graph.backend import resolve_backend
from repro.graph.graph import Graph


class _BFTTree:
    """An unrooted candidate tree: edge set, node set, seed coverage.

    ``eset`` is the edge set's pool handle (:mod:`repro.ctp.interning`) —
    BFT's ``memory`` is by far the biggest history structure in the paper's
    experiments (Figure 10), so O(1) membership matters most here.
    ``node_mask`` is the exact node bitmask used for the Merge1 analogue.
    """

    __slots__ = ("pool", "eset", "nodes", "node_mask", "sat", "weight")

    def __init__(self, pool, eset, nodes: FrozenSet[int], node_mask: int, sat: int, weight: float):
        self.pool = pool
        self.eset = eset
        self.nodes = nodes
        self.node_mask = node_mask
        self.sat = sat
        self.weight = weight

    @property
    def edges(self) -> FrozenSet[int]:
        return self.pool.edges(self.eset)

    @property
    def size(self) -> int:
        return self.pool.size(self.eset)


class BFTSearch:
    """Breadth-first CTP search (complete, needs result minimization).

    Shares the GAM engines' concurrency contract: per-call state lives in
    :class:`_BFTRun`, only the adopted pool is shared, so concurrent runs
    over one thread-safe context produce serial-identical results.
    """

    name = "bft"
    #: "none" (plain BFT), "merge" (BFT-M), "aggressive" (BFT-AM).
    merge_mode = "none"

    def run(
        self,
        graph: Graph,
        seed_sets: Sequence,
        config: Optional[SearchConfig] = None,
        context: Optional[SearchContext] = None,
    ) -> CTPResultSet:
        run = _BFTRun(graph, seed_sets, config or DEFAULT_CONFIG, self, context)
        return run.execute()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class BFTMSearch(BFTSearch):
    """BFT + one level of Merge on each grown tree (Section 4.3)."""

    name = "bft-m"
    merge_mode = "merge"


class BFTAMSearch(BFTSearch):
    """BFT + aggressive (cascading) Merge (Section 4.3)."""

    name = "bft-am"
    merge_mode = "aggressive"


class _BFTRun:
    def __init__(
        self,
        graph: Graph,
        seed_sets: Sequence,
        config: SearchConfig,
        algo: BFTSearch,
        context: Optional[SearchContext] = None,
    ):
        self.graph = graph = resolve_backend(graph, config.backend)
        self.config = config
        self.algo = algo
        self.stats = SearchStats()
        normalized, self.wildcard_positions = normalize_seed_sets(graph, seed_sets)
        if self.wildcard_positions:
            raise SearchError(
                "the BFT baselines do not support N (wildcard) seed sets; "
                "use a GAM-family algorithm (Section 4.9)"
            )
        self.positions = normalized
        self.explicit_positions = [p for p, s in enumerate(normalized) if s is not None]
        self.explicit_sets: List[Tuple[int, ...]] = [normalized[p] for p in self.explicit_positions]
        self.full_sat = full_mask(len(self.explicit_sets))
        self.seed_mask: Dict[int, int] = {}
        for bit, nodes in enumerate(self.explicit_sets):
            for node in nodes:
                self.seed_mask[node] = self.seed_mask.get(node, 0) | (1 << bit)
        # Query-scoped pool sharing (see _GAMRun): BFT trees are unrooted,
        # so only the pool is adopted, not the rooted-result cache.
        self.pool, _, self._pool_baseline = adopt_pool(
            context, graph, config.interning, config.dense_ids
        )
        # Dense per-search node identity (repro.ctp.idremap): BFT uses the
        # masks in both interning modes, and its merge needs the inverse
        # (mask bit -> global node) to recover the shared node.
        self.remap = make_remap(config.dense_ids)
        self.memory: Set = set()  # every tree ever built (edge-set handles)
        self.trees_containing: Dict[int, List[_BFTTree]] = {}
        self.queue: deque = deque()
        self.result_keys: Set[FrozenSet[int]] = set()
        self.results: List[ResultTree] = []
        self.deadline = Deadline(config.timeout)
        self.timed_out = False

    # ------------------------------------------------------------------
    def execute(self) -> CTPResultSet:
        complete = True
        try:
            self._init_trees()
            self._main_loop()
        except _StopSearch as stop:
            complete = False
            self.timed_out = stop.timed_out
        self.stats.elapsed_seconds = self.deadline.elapsed()
        pool_stats_delta(self.stats, self.pool, self._pool_baseline)
        results = self.results
        if self.config.top_k is not None and len(results) > self.config.top_k:
            results = sorted(results, key=lambda r: (-(r.score or 0.0), r.size))[: self.config.top_k]
        return CTPResultSet(results=results, stats=self.stats, complete=complete, timed_out=self.timed_out, algorithm=self.algo.name)

    def _init_trees(self) -> None:
        if any(not seed_set for seed_set in self.explicit_sets):
            return
        pool = self.pool
        remap_bit = self.remap.bit
        for node, mask in self.seed_mask.items():
            tree = _BFTTree(pool, pool.EMPTY, frozenset((node,)), remap_bit(node), mask, 0.0)
            self.stats.init_trees += 1
            self._process(tree, allow_merge=False)

    def _main_loop(self) -> None:
        graph = self.graph
        seed_mask = self.seed_mask
        labels = self.config.labels
        max_edges = self.config.max_edges
        pool = self.pool
        memory = self.memory
        stats = self.stats
        remap_bit = self.remap.bit
        allow_merge = self.algo.merge_mode != "none"
        while self.queue:
            if self.deadline.expired():
                raise _StopSearch(timed_out=True)
            tree = self.queue.popleft()
            if max_edges is not None and tree.size + 1 > max_edges:
                continue
            nodes = tree.nodes
            sat = tree.sat
            for node in nodes:
                for edge_id, other, _ in graph.adjacent_filtered(node, labels):
                    if other in nodes:  # Grow1
                        continue
                    other_mask = seed_mask.get(other, 0)
                    if other_mask & sat:  # Grow2
                        continue
                    stats.grows += 1
                    # History check before construction: a duplicate grow
                    # costs one handle lookup, no sets and no _BFTTree.
                    eset = pool.union1(tree.eset, edge_id)
                    if eset in memory:
                        continue
                    grown = _BFTTree(
                        pool,
                        eset,
                        nodes | {other},
                        tree.node_mask | remap_bit(other),
                        sat | other_mask,
                        tree.weight + graph.edge_weight(edge_id),
                    )
                    self._process(grown, allow_merge=allow_merge)

    # ------------------------------------------------------------------
    def _process(self, tree: _BFTTree, allow_merge: bool) -> None:
        """Register a candidate tree (already absent from ``memory``);
        report/minimize, queue, and merge."""
        self.memory.add(tree.eset)
        self.stats.trees_kept += 1
        if self.config.max_trees is not None and self.stats.trees_kept > self.config.max_trees:
            raise _StopSearch()
        if tree.sat == self.full_sat:
            self._report(tree)
            return
        self.queue.append(tree)
        if self.algo.merge_mode != "none" and tree.eset:
            for node in tree.nodes:
                self.trees_containing.setdefault(node, []).append(tree)
        if allow_merge and tree.eset:
            self._merge(tree, cascade=self.algo.merge_mode == "aggressive")

    def _merge(self, tree: _BFTTree, cascade: bool) -> None:
        """Merge ``tree`` with all compatible partners (one level or cascade)."""
        work = deque([tree])
        max_edges = self.config.max_edges
        while work:
            if self.deadline.expired():
                raise _StopSearch(timed_out=True)
            t1 = work.popleft()
            candidates: List[_BFTTree] = []
            seen_ids: Set[int] = set()
            for node in t1.nodes:
                for partner in self.trees_containing.get(node, ()):
                    if id(partner) not in seen_ids:
                        seen_ids.add(id(partner))
                        candidates.append(partner)
            t1_mask = t1.node_mask
            t1_size = t1.size
            for tp in candidates:
                if tp is t1 or not tp.eset:
                    continue
                self.stats.merges_attempted += 1
                common_mask = t1_mask & tp.node_mask
                # Merge1 analogue: share exactly one node — exact bitmask
                # popcount-1 test, no set intersection built.
                if not common_mask or common_mask & (common_mask - 1):
                    continue
                # The lone set bit names the shared node in the search's id
                # space; the remap inverse takes it back to the global id.
                shared = self.remap.node(common_mask.bit_length() - 1)
                if (t1.sat & tp.sat) & ~self.seed_mask.get(shared, 0):  # Merge2
                    continue
                if max_edges is not None and t1_size + tp.size > max_edges:
                    continue
                eset = self.pool.union2(t1.eset, tp.eset)
                if eset in self.memory:
                    self.stats.pruned_history += 1
                    continue
                merged = _BFTTree(
                    self.pool,
                    eset,
                    t1.nodes | tp.nodes,
                    t1_mask | tp.node_mask,
                    t1.sat | tp.sat,
                    t1.weight + tp.weight,
                )
                self.stats.merges += 1
                self.memory.add(eset)
                self.stats.trees_kept += 1
                if merged.sat == self.full_sat:
                    self._report(merged)
                    continue
                self.queue.append(merged)
                for node in merged.nodes:
                    self.trees_containing.setdefault(node, []).append(merged)
                if cascade:
                    work.append(merged)

    # ------------------------------------------------------------------
    def _report(self, tree: _BFTTree) -> None:
        """Minimize a covering tree (Section 4.1) and record the result."""
        edges, nodes, weight = self._minimize(tree)
        if edges in self.result_keys:
            self.stats.duplicate_results += 1
            return
        if self.config.uni and edges and not self._is_arborescence(edges, nodes):
            self.stats.pruned_filters += 1
            return
        self.result_keys.add(edges)
        seeds = materialize_seeds(
            len(self.positions),
            self.explicit_positions,
            self.seed_mask,
            nodes,
            tree.sat,
        )
        score = None
        if self.config.score is not None:
            score = self.config.score(self.graph, edges, nodes)
        self.results.append(ResultTree(edges=edges, nodes=nodes, seeds=seeds, weight=weight, score=score))
        self.stats.results_found += 1
        if self.config.limit is not None and self.stats.results_found >= self.config.limit:
            raise _StopSearch()

    def _minimize(self, tree: _BFTTree) -> Tuple[FrozenSet[int], FrozenSet[int], float]:
        """Strip non-seed leaf branches until every leaf is a seed."""
        graph = self.graph
        edge_endpoints = graph.edge_endpoints
        tree_edges = tree.edges  # materialize the interned set once
        incident: Dict[int, List[int]] = {node: [] for node in tree.nodes}
        for edge_id in tree_edges:
            source, target = edge_endpoints(edge_id)
            incident[source].append(edge_id)
            incident[target].append(edge_id)
        removed_edges: Set[int] = set()
        removed_nodes: Set[int] = set()
        candidates = deque(
            node for node, edge_list in incident.items() if len(edge_list) == 1 and node not in self.seed_mask
        )
        while candidates:
            leaf = candidates.popleft()
            if leaf in removed_nodes:
                continue
            live = [e for e in incident[leaf] if e not in removed_edges]
            if len(live) != 1:
                continue
            (edge_id,) = live
            removed_edges.add(edge_id)
            removed_nodes.add(leaf)
            source, target = edge_endpoints(edge_id)
            other = target if source == leaf else source
            other_live = [e for e in incident[other] if e not in removed_edges]
            if len(other_live) == 1 and other not in self.seed_mask:
                candidates.append(other)
        edges = frozenset(e for e in tree_edges if e not in removed_edges)
        nodes = frozenset(n for n in tree.nodes if n not in removed_nodes)
        weight = sum(graph.edge_weight(e) for e in edges)
        return edges, nodes, weight

    def _is_arborescence(self, edges: FrozenSet[int], nodes: FrozenSet[int]) -> bool:
        """UNI post-filter: one node reaches all others along edge directions."""
        edge_target = self.graph.edge_target
        in_deg = {node: 0 for node in nodes}
        for edge_id in edges:
            in_deg[edge_target(edge_id)] += 1
        roots = [node for node, d in in_deg.items() if d == 0]
        return len(roots) == 1 and all(d <= 1 for d in in_deg.values())
