"""Rooted search trees with provenance (Definition 4.1).

A :class:`SearchTree` is immutable.  Besides the rooted tree itself (root +
edge set + node set) it carries the derived state every algorithm in the GAM
family needs in its hot path:

``eset``
    the tree's edge set as a pool handle (:mod:`repro.ctp.interning`): a
    small int under the hash-consing pool, a plain ``frozenset`` under the
    ``interning=False`` fallback.  Handles are falsy exactly when the set
    is empty, and equal iff the edge sets are equal, so history membership
    (Algorithm 4) is an O(1) lookup.  ``edges`` materializes the actual
    frozenset (free: the pool stores it interned);

``node_mask``
    the node set as an exact bitmask.  Merge1 — "the trees share exactly
    their root" — becomes ``t1.node_mask & t2.node_mask == root_bit``, a
    big-int test that rejects incompatible partners before any set is
    built.  Which bit a node occupies is the *engine's* unit of account
    (:mod:`repro.ctp.idremap`): under ``dense_ids`` (default) the engine
    passes ``node_bit`` from its search-local remap, so masks are sized
    by |nodes touched|; under the legacy representation bit ``n`` is
    global node id ``n`` and the mask is sized by the largest id in the
    tree — O(max_id/64) per test, the pre-million-node behaviour;

``sat``
    bitmask of the seed sets satisfied by the tree (Observation 1);

``path_seed``
    if the tree is an ``(root, s)``-rooted path (Definition 4.4) this is the
    seed ``s``; used to maintain LESP seed signatures;

``mo_tainted``
    true when the provenance contains a ``Mo`` step — Grow is disabled on
    such trees (Section 4.5);

``arb_root`` / ``root_in_deg``
    arborescence bookkeeping for the ``UNI`` filter (Section 4.8): under
    unidirectional search every tree must have a node from which a directed
    path reaches every other node; both fields are maintained in O(1) per
    Grow/Merge.

``seq``
    registration ticket assigned by the engine when the tree enters
    ``TreesRootedIn``; it restores global insertion order when merge
    partners are re-assembled from several sat buckets.  Engine-owned
    bookkeeping, not part of the tree's identity.

Construction goes through :func:`make_init`, :func:`make_grow`,
:func:`make_merge` and :func:`make_mo`; the *semantic* pre-conditions
(Grow1/Grow2, Merge1/Merge2, filters) are the engine's responsibility, while
the UNI arborescence rules live here because they are intrinsically about
tree shape.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

#: Provenance kinds (Definition 4.1 plus the Mo step of Section 4.5).
INIT, GROW, MERGE, MO = "init", "grow", "merge", "mo"


class SearchTree:
    """An immutable rooted tree built during CTP search."""

    __slots__ = (
        "pool",
        "root",
        "eset",
        "nodes",
        "node_mask",
        "sat",
        "weight",
        "kind",
        "mo_tainted",
        "path_seed",
        "arb_root",
        "root_in_deg",
        "seq",
    )

    def __init__(
        self,
        pool,
        root: int,
        eset,
        nodes: FrozenSet[int],
        node_mask: int,
        sat: int,
        weight: float,
        kind: str,
        mo_tainted: bool,
        path_seed: Optional[int],
        arb_root: Optional[int],
        root_in_deg: int,
    ):
        self.pool = pool
        self.root = root
        self.eset = eset
        self.nodes = nodes
        self.node_mask = node_mask
        self.sat = sat
        self.weight = weight
        self.kind = kind
        self.mo_tainted = mo_tainted
        self.path_seed = path_seed
        self.arb_root = arb_root
        self.root_in_deg = root_in_deg
        self.seq = -1

    @property
    def edges(self) -> FrozenSet[int]:
        """The edge set as a frozenset (interned — shared, do not mutate)."""
        return self.pool.edges(self.eset)

    @property
    def size(self) -> int:
        """Number of edges."""
        return self.pool.size(self.eset)

    def rooted_key(self):
        """Identity of the *rooted tree* (root + edge set), Section 4.2."""
        return (self.root, self.eset)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SearchTree(root={self.root}, edges={sorted(self.edges)}, "
            f"sat={bin(self.sat)}, kind={self.kind})"
        )


def make_init(pool, node: int, sat: int, uni: bool, node_bit: Optional[int] = None) -> SearchTree:
    """``Init(n)`` — a one-node tree for a seed (Definition 4.1 case 1).

    ``node_bit`` is the node's mask bit under the engine's id remap
    (:mod:`repro.ctp.idremap`); omitted, the legacy global-id bit is used.
    """
    return SearchTree(
        pool=pool,
        root=node,
        eset=pool.EMPTY,
        nodes=frozenset((node,)),
        node_mask=node_bit if node_bit is not None else 1 << node,
        sat=sat,
        weight=0.0,
        kind=INIT,
        mo_tainted=False,
        path_seed=node,
        arb_root=node if uni else None,
        root_in_deg=0,
    )


def uni_grow_state(tree: SearchTree, new_root: int, outgoing: bool) -> Optional[Tuple[Optional[int], int]]:
    """UNI arborescence state of ``Grow(tree, e)``: ``(arb_root, root_in_deg)``.

    ``None`` means the grown tree would not be an arborescence.  Exposed so
    the engine can apply the UNI filter *before* paying for the grown tree
    (the decision depends only on provenance scalars, not on any set).
    """
    if outgoing:
        # root -> new_root keeps the current arborescence root.
        return (tree.arb_root if tree.eset else tree.root), 1
    # new_root -> root: only legal if the old root was the arborescence
    # root (in-degree 0); the new node takes over.
    if tree.eset and tree.arb_root != tree.root:
        return None
    return new_root, 0


def uni_merge_state(t1: SearchTree, t2: SearchTree) -> Optional[Tuple[Optional[int], int]]:
    """UNI arborescence state of ``Merge(t1, t2)``: ``(arb_root, root_in_deg)``.

    The merged tree is an arborescence iff at least one operand is rooted
    (in the arborescence sense) at the shared node, and the shared node
    keeps in-degree <= 1.  ``None`` means the merge violates UNI.
    """
    root = t1.root
    if t1.arb_root == root:
        arb_root = t2.arb_root
    elif t2.arb_root == root:
        arb_root = t1.arb_root
    else:
        return None
    root_in_deg = t1.root_in_deg + t2.root_in_deg
    if root_in_deg > 1:
        return None
    return arb_root, root_in_deg


def make_grow(
    tree: SearchTree,
    edge_id: int,
    new_root: int,
    new_root_sat: int,
    new_root_is_seed: bool,
    edge_weight: float,
    outgoing: bool,
    uni: bool,
    eset=None,
    uni_state: Optional[Tuple[Optional[int], int]] = None,
    node_bit: Optional[int] = None,
) -> Optional[SearchTree]:
    """``Grow(t, e)`` — extend ``tree`` from its root along ``edge_id``.

    ``outgoing`` tells whether the edge leaves the current root (i.e. is
    directed root -> new_root).  Returns ``None`` when ``uni`` is set and the
    extended tree would not be an arborescence.  ``eset`` / ``uni_state``
    may carry the already-computed edge-set handle and
    :func:`uni_grow_state` result (the engine derives both for its
    pre-construction pruning); otherwise they are derived here.
    ``node_bit`` is ``new_root``'s mask bit under the engine's id remap
    (:mod:`repro.ctp.idremap`); omitted, the legacy global-id bit is used.
    """
    if uni:
        state = uni_state if uni_state is not None else uni_grow_state(tree, new_root, outgoing)
        if state is None:
            return None
        arb_root, root_in_deg = state
    else:
        arb_root = None
        root_in_deg = 0
    # A tree stays an (n, s)-rooted path while it grows from the root of a
    # path and does not pick up a second seed (Definition 4.4).
    if tree.path_seed is not None and not new_root_is_seed:
        path_seed = tree.path_seed
    else:
        path_seed = None
    pool = tree.pool
    return SearchTree(
        pool=pool,
        root=new_root,
        eset=eset if eset is not None else pool.union1(tree.eset, edge_id),
        nodes=tree.nodes | {new_root},
        node_mask=tree.node_mask | (node_bit if node_bit is not None else 1 << new_root),
        sat=tree.sat | new_root_sat,
        weight=tree.weight + edge_weight,
        kind=GROW,
        mo_tainted=tree.mo_tainted,
        path_seed=path_seed,
        arb_root=arb_root,
        root_in_deg=root_in_deg,
    )


def make_merge(
    t1: SearchTree,
    t2: SearchTree,
    uni: bool,
    eset=None,
    uni_state: Optional[Tuple[Optional[int], int]] = None,
) -> Optional[SearchTree]:
    """``Merge(t1, t2)`` — union of two trees sharing exactly their root.

    The engine has already verified Merge1/Merge2; here we combine the
    derived state and enforce the UNI arborescence rule: the merged tree is
    an arborescence iff at least one operand is rooted (in the arborescence
    sense) at the shared node.  ``eset`` / ``uni_state`` may carry the
    already-computed union handle and :func:`uni_merge_state` result (the
    engine derives both for its pre-construction pruning).
    """
    root = t1.root
    if uni:
        state = uni_state if uni_state is not None else uni_merge_state(t1, t2)
        if state is None:
            return None
        arb_root, root_in_deg = state
    else:
        arb_root = None
        root_in_deg = 0
    pool = t1.pool
    return SearchTree(
        pool=pool,
        root=root,
        eset=eset if eset is not None else pool.union2(t1.eset, t2.eset),
        nodes=t1.nodes | t2.nodes,
        node_mask=t1.node_mask | t2.node_mask,
        sat=t1.sat | t2.sat,
        weight=t1.weight + t2.weight,
        kind=MERGE,
        mo_tainted=t1.mo_tainted or t2.mo_tainted,
        path_seed=None,
        arb_root=arb_root,
        root_in_deg=root_in_deg,
    )


def make_mo(tree: SearchTree, new_root: int, new_root_in_deg: int) -> SearchTree:
    """``Mo(t, r)`` — re-root ``tree`` at the seed ``new_root`` (Section 4.5).

    The edge set is unchanged; the copy is merge-only (``mo_tainted``).
    ``new_root_in_deg`` is the in-degree of ``new_root`` inside the tree,
    which the engine computes from the graph (needed for UNI merges).
    """
    return SearchTree(
        pool=tree.pool,
        root=new_root,
        eset=tree.eset,
        nodes=tree.nodes,
        node_mask=tree.node_mask,
        sat=tree.sat,
        weight=tree.weight,
        kind=MO,
        mo_tainted=True,
        path_seed=None,
        arb_root=tree.arb_root,
        root_in_deg=new_root_in_deg,
    )
