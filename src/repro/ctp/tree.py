"""Rooted search trees with provenance (Definition 4.1).

A :class:`SearchTree` is immutable.  Besides the rooted tree itself (root +
edge set + node set) it carries the derived state every algorithm in the GAM
family needs in its hot path:

``sat``
    bitmask of the seed sets satisfied by the tree (Observation 1);

``path_seed``
    if the tree is an ``(root, s)``-rooted path (Definition 4.4) this is the
    seed ``s``; used to maintain LESP seed signatures;

``mo_tainted``
    true when the provenance contains a ``Mo`` step — Grow is disabled on
    such trees (Section 4.5);

``arb_root`` / ``root_in_deg``
    arborescence bookkeeping for the ``UNI`` filter (Section 4.8): under
    unidirectional search every tree must have a node from which a directed
    path reaches every other node; both fields are maintained in O(1) per
    Grow/Merge.

Construction goes through :func:`make_init`, :func:`make_grow`,
:func:`make_merge` and :func:`make_mo`; the *semantic* pre-conditions
(Grow1/Grow2, Merge1/Merge2, filters) are the engine's responsibility, while
the UNI arborescence rules live here because they are intrinsically about
tree shape.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

#: Provenance kinds (Definition 4.1 plus the Mo step of Section 4.5).
INIT, GROW, MERGE, MO = "init", "grow", "merge", "mo"


class SearchTree:
    """An immutable rooted tree built during CTP search."""

    __slots__ = (
        "root",
        "edges",
        "nodes",
        "sat",
        "weight",
        "kind",
        "mo_tainted",
        "path_seed",
        "arb_root",
        "root_in_deg",
    )

    def __init__(
        self,
        root: int,
        edges: FrozenSet[int],
        nodes: FrozenSet[int],
        sat: int,
        weight: float,
        kind: str,
        mo_tainted: bool,
        path_seed: Optional[int],
        arb_root: Optional[int],
        root_in_deg: int,
    ):
        self.root = root
        self.edges = edges
        self.nodes = nodes
        self.sat = sat
        self.weight = weight
        self.kind = kind
        self.mo_tainted = mo_tainted
        self.path_seed = path_seed
        self.arb_root = arb_root
        self.root_in_deg = root_in_deg

    @property
    def size(self) -> int:
        """Number of edges."""
        return len(self.edges)

    def rooted_key(self):
        """Identity of the *rooted tree* (root + edge set), Section 4.2."""
        return (self.root, self.edges)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SearchTree(root={self.root}, edges={sorted(self.edges)}, "
            f"sat={bin(self.sat)}, kind={self.kind})"
        )


def make_init(node: int, sat: int, uni: bool) -> SearchTree:
    """``Init(n)`` — a one-node tree for a seed (Definition 4.1 case 1)."""
    return SearchTree(
        root=node,
        edges=frozenset(),
        nodes=frozenset((node,)),
        sat=sat,
        weight=0.0,
        kind=INIT,
        mo_tainted=False,
        path_seed=node,
        arb_root=node if uni else None,
        root_in_deg=0,
    )


def make_grow(
    tree: SearchTree,
    edge_id: int,
    new_root: int,
    new_root_sat: int,
    new_root_is_seed: bool,
    edge_weight: float,
    outgoing: bool,
    uni: bool,
) -> Optional[SearchTree]:
    """``Grow(t, e)`` — extend ``tree`` from its root along ``edge_id``.

    ``outgoing`` tells whether the edge leaves the current root (i.e. is
    directed root -> new_root).  Returns ``None`` when ``uni`` is set and the
    extended tree would not be an arborescence.
    """
    if uni:
        if outgoing:
            # root -> new_root keeps the current arborescence root.
            arb_root = tree.arb_root if tree.edges else tree.root
            root_in_deg = 1
        else:
            # new_root -> root: only legal if the old root was the
            # arborescence root (in-degree 0); the new node takes over.
            if tree.edges and tree.arb_root != tree.root:
                return None
            arb_root = new_root
            root_in_deg = 0
    else:
        arb_root = None
        root_in_deg = 0
    # A tree stays an (n, s)-rooted path while it grows from the root of a
    # path and does not pick up a second seed (Definition 4.4).
    if tree.path_seed is not None and not new_root_is_seed:
        path_seed = tree.path_seed
    else:
        path_seed = None
    return SearchTree(
        root=new_root,
        edges=tree.edges | {edge_id},
        nodes=tree.nodes | {new_root},
        sat=tree.sat | new_root_sat,
        weight=tree.weight + edge_weight,
        kind=GROW,
        mo_tainted=tree.mo_tainted,
        path_seed=path_seed,
        arb_root=arb_root,
        root_in_deg=root_in_deg,
    )


def make_merge(t1: SearchTree, t2: SearchTree, uni: bool) -> Optional[SearchTree]:
    """``Merge(t1, t2)`` — union of two trees sharing exactly their root.

    The engine has already verified Merge1/Merge2; here we combine the
    derived state and enforce the UNI arborescence rule: the merged tree is
    an arborescence iff at least one operand is rooted (in the arborescence
    sense) at the shared node.
    """
    root = t1.root
    if uni:
        if t1.arb_root == root:
            arb_root = t2.arb_root
        elif t2.arb_root == root:
            arb_root = t1.arb_root
        else:
            return None
        root_in_deg = t1.root_in_deg + t2.root_in_deg
        if root_in_deg > 1:
            return None
    else:
        arb_root = None
        root_in_deg = 0
    return SearchTree(
        root=root,
        edges=t1.edges | t2.edges,
        nodes=t1.nodes | t2.nodes,
        sat=t1.sat | t2.sat,
        weight=t1.weight + t2.weight,
        kind=MERGE,
        mo_tainted=t1.mo_tainted or t2.mo_tainted,
        path_seed=None,
        arb_root=arb_root,
        root_in_deg=root_in_deg,
    )


def make_mo(tree: SearchTree, new_root: int, new_root_in_deg: int) -> SearchTree:
    """``Mo(t, r)`` — re-root ``tree`` at the seed ``new_root`` (Section 4.5).

    The edge set is unchanged; the copy is merge-only (``mo_tainted``).
    ``new_root_in_deg`` is the in-degree of ``new_root`` inside the tree,
    which the engine computes from the graph (needed for UNI merges).
    """
    return SearchTree(
        root=new_root,
        edges=tree.edges,
        nodes=tree.nodes,
        sat=tree.sat,
        weight=tree.weight,
        kind=MO,
        mo_tainted=True,
        path_seed=None,
        arb_root=tree.arb_root,
        root_in_deg=new_root_in_deg,
    )
