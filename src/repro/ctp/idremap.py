"""Dense per-search node identity (the million-node ROADMAP item).

Every GAM-family / BFT tree carries ``node_mask``, an exact node bitmask
used by the Merge1 compatibility test.  The seed implementation sets bit
``n`` for *global* node id ``n`` — so the mask is a Python big-int sized by
the **largest node id the search touches**, not by how many nodes it
touches.  On a 10^6-node graph that is ~125 KB per tree and every Merge1
test is O(max_id/64); on a graph with sparse huge ids (external datasets
routinely carry 10^9-range ids) the masks explode long before memory is
"used" for anything.

:class:`IdRemap` fixes the unit of account: a search-local bijection
global id → compact index, assigned lazily in first-touch order as the
frontier reaches nodes, with an inverse array for the one place a search
must go *back* from a mask bit to a node (the BFT merge recovers the shared
node from ``common_mask``).  Masks become sized by |nodes touched by this
search| — typically a few dozen bits under a ``MAX n`` filter — regardless
of the graph's id space.

Correctness is structural: the remap is injective, so for any two trees of
one search ``mask(t1) & mask(t2)`` has exactly the image bits of the node
intersection, and Merge1's single-bit-equality test is preserved verbatim.
Node *sets* (``tree.nodes``, result rows, seed materialization) keep global
ids throughout — only the mask representation is compact — so dense and
legacy runs produce bit-identical rows (``tests/test_dense_ids.py``).

:class:`IdentityRemap` is the legacy representation behind the same two
calls (``bit``/``node``), selected by ``SearchConfig(dense_ids=False)``; it
keeps the engines on a single code path and preserves the A/B baseline the
scale bench (``python -m repro.bench scale``) measures against.
"""

from __future__ import annotations

from typing import Dict, List


class IdRemap:
    """Lazily-built dense bijection: global node id ↔ compact index.

    Compact indexes are assigned in first-call order, which is
    deterministic for a deterministic search (seeds first, then frontier
    nodes as they are reached); they are private to one search run and
    never appear in results.
    """

    __slots__ = ("_fwd", "_inv")

    def __init__(self) -> None:
        self._fwd: Dict[int, int] = {}
        self._inv: List[int] = []

    def index(self, node: int) -> int:
        """The compact index of ``node``, assigning the next one if new."""
        fwd = self._fwd
        compact = fwd.get(node)
        if compact is None:
            compact = len(fwd)
            fwd[node] = compact
            self._inv.append(node)
        return compact

    def bit(self, node: int) -> int:
        """``1 << index(node)`` — the node's mask bit in this search."""
        fwd = self._fwd
        compact = fwd.get(node)
        if compact is None:
            compact = len(fwd)
            fwd[node] = compact
            self._inv.append(node)
        return 1 << compact

    def node(self, compact: int) -> int:
        """Inverse: the global node id behind a compact index."""
        return self._inv[compact]

    def __len__(self) -> int:
        return len(self._inv)


class IdentityRemap:
    """The legacy unit of account: mask bit ``n`` *is* global node id ``n``.

    Selected by ``SearchConfig(dense_ids=False)``.  Stateless — one module
    instance (:data:`IDENTITY_REMAP`) serves every legacy run.
    """

    __slots__ = ()

    @staticmethod
    def index(node: int) -> int:
        return node

    @staticmethod
    def bit(node: int) -> int:
        return 1 << node

    @staticmethod
    def node(compact: int) -> int:
        return compact

    def __len__(self) -> int:
        return 0


#: Shared stateless instance for ``dense_ids=False`` runs.
IDENTITY_REMAP = IdentityRemap()


def make_remap(dense_ids: bool):
    """The remap for a run: a fresh :class:`IdRemap`, or the identity."""
    return IdRemap() if dense_ids else IDENTITY_REMAP
