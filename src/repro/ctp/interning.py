"""Interned tree state: hash-consed edge sets with Zobrist fingerprints.

PR 1 made adjacency cheap; after it, the GAM-family engines (Sections
4.2-4.7 of the paper) spend their time on *tree bookkeeping*: every Grow /
Merge builds a fresh ``frozenset`` of edge ids, and every history check
(``hist`` / ``rooted_keys`` / ``result_keys`` in Algorithm 4) re-hashes
those sets from scratch — O(|tree|) per event, on sets that are heavily
shared between trees.

:class:`EdgeSetPool` removes that cost by *hash-consing*: each distinct
edge set is interned once and identified by a stable small-int handle.
The two hot constructors are memoized —

``union1(set_id, edge_id)``
    the Grow step (add one edge);

``union2(id1, id2)``
    the Merge step (union two sets);

— so rebuilding a set the search has already produced is a single dict
lookup, and *membership* of a set in any history structure is an int
lookup instead of an O(|tree|) frozenset hash.  Each set carries a
deterministic Zobrist-style fingerprint (XOR of per-edge 64-bit codes from
a splitmix64 stream) so interning a newly materialized union needs no
re-hash of the frozenset in the common no-collision case; fingerprint
collisions are resolved exactly by set comparison, never silently.

Handles are engine-local: every search run owns one pool, ids from
different pools are unrelated (see the isolation property tests).  The
``EMPTY`` handle is 0 — deliberately falsy, mirroring ``frozenset()``
truthiness, so engine code can say ``if tree.eset:`` under either
representation.

:class:`FlatEdgeSetPool` (the ``SearchConfig(dense_ids=True)`` default)
keeps the same handles and counters but moves the pool's hot maps —
``_by_key`` and both union memos — into flat open-addressed ``array``
tables (:class:`_FpTable` / :class:`_IntTable`): at million-node scale the
dict pools spend ~100 bytes of boxed-int entry per memo, and the flat
lanes collapse that to 16 bytes per slot of contiguous storage.  Handle
numbering is identical to the dict pool for any operation sequence, so
dense and legacy searches stay bit-identical.

:class:`FrozenEdgeSets` is the identity-shim counterpart used when
``SearchConfig(interning=False)``: handles *are* frozensets and every
operation is the seed implementation's frozenset arithmetic.  It exists so
the engines keep a single code path and so the micro-bench
(``python -m repro.bench interning``) can measure exactly what the pool
buys on identical workloads.

:class:`SearchContext` scopes the pool to a *query* instead of a single
CTP evaluation (Section 3's pipeline runs one search per CTP): all CTPs of
a query intern into the same pool — so edge sets a sibling CTP already
built are memo hits instead of fresh allocations, and handles are
comparable across runs — and two bounded caches ride on top of the shared
handles: a per-root cache of materialized rooted-tree results keyed by
``(root, eset handle, config fingerprint)``, and the evaluator's
cross-CTP memo of whole result sets keyed by graph, seed sets, and config
fingerprint.  Both caches are bounded LRU (:class:`ResultCache`) — by
entry count and, optionally, by approximate payload bytes — and own every
reference they hold, so a long-lived context cannot grow without limit.

``SearchContext(thread_safe=True)`` makes all of that state safe to share
across the worker threads of a parallel dispatch
(:mod:`repro.query.parallel`): the pool becomes a
:class:`ShardedEdgeSetPool` — the exact-interning step is serialized per
*fingerprint shard*, so two threads interning different sets almost never
contend, while two threads interning the *same* set are forced through one
shard lock and get one handle — and both caches take a lock around their
LRU mutations.  Sharing stays representation-only either way: a search
never reads another run's private state, so results are identical no
matter how runs interleave.
"""

from __future__ import annotations

import sys
import threading
from array import array
from collections import OrderedDict
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

_MASK64 = (1 << 64) - 1


def splitmix64(index: int) -> int:
    """The splitmix64 mix of ``index`` — the per-edge Zobrist code stream.

    Deterministic (no process-level randomness), well-distributed, and
    cheap to extend to any edge id on demand.
    """
    x = (index * 0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class EdgeSetPool:
    """Hash-consing pool assigning small-int handles to edge sets.

    Invariants:

    * handle 0 is the empty set (``EMPTY``), so handles are falsy exactly
      when the set is empty;
    * interning is *exact* — two handles are equal iff the sets are equal
      (fingerprint collisions fall back to set comparison);
    * ``union1``/``union2`` accept any operands (overlap included); the
      disjointness the engines guarantee (Grow never re-adds a tree edge,
      Merge1 operands share only the root) only makes the memoized fast
      path cheaper, it is not a correctness requirement.
    """

    EMPTY = 0

    #: Memo/bucket keys are packed into single ints (``a << SHIFT | b``)
    #: instead of tuples — one small-int hash beats a tuple allocation in
    #: the hot constructors.  Handles and edge ids must stay below 2**32;
    #: an in-memory pool hits RAM limits orders of magnitude earlier.
    _SHIFT = 32

    __slots__ = (
        "_recs",
        "_by_key",
        "_union1",
        "_union2",
        "_zobrist",
        "union_hits",
        "collisions",
    )

    def __init__(self) -> None:
        #: Per-handle record ``(edges, fingerprint, size)`` — fused into
        #: one list so the hot constructors do a single index per operand.
        self._recs: List[Tuple[FrozenSet[int], int, int]] = [(frozenset(), 0, 0)]
        #: packed (fingerprint, size) -> handle, or list of handles when
        #: distinct sets collide on the full 64-bit fingerprint.
        self._by_key: Dict[int, Union[int, List[int]]] = {0: 0}
        self._union1: Dict[int, int] = {}
        self._union2: Dict[int, int] = {}
        self._zobrist: List[int] = []
        self.union_hits = 0
        self.collisions = 0

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def edges(self, set_id: int) -> FrozenSet[int]:
        """The interned set behind ``set_id`` (shared, do not mutate)."""
        return self._recs[set_id][0]

    def size(self, set_id: int) -> int:
        return self._recs[set_id][2]

    def fingerprint(self, set_id: int) -> int:
        """The 64-bit Zobrist fingerprint (XOR of per-edge codes)."""
        return self._recs[set_id][1]

    @property
    def union_misses(self) -> int:
        """Memo misses so far — every miss files exactly one memo entry,
        so the count is the combined memo size (no hot-path counter)."""
        return len(self._union1) + len(self._union2)

    def __len__(self) -> int:
        """Number of distinct edge sets interned so far."""
        return len(self._recs)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _code(self, edge_id: int) -> int:
        codes = self._zobrist
        if edge_id >= len(codes):
            # Extend geometrically: ids usually arrive in near-increasing
            # order, and one big extend amortizes the generator setup.
            target = max(edge_id + 1, 2 * len(codes), 64)
            codes.extend(splitmix64(i) for i in range(len(codes), target))
        return codes[edge_id]

    def _intern(self, edges: FrozenSet[int], fp: int, size: int) -> int:
        """Exact interning of a *materialized* set (slow path)."""
        bkey = (fp << self._SHIFT) | size
        existing = self._by_key.get(bkey)
        if existing is None:
            set_id = self._new_id(edges, fp, size)
            self._by_key[bkey] = set_id
            return set_id
        if isinstance(existing, int):
            if self._recs[existing][0] == edges:
                return existing
            # Genuine 64-bit fingerprint collision: resolve exactly.
            self.collisions += 1
            set_id = self._new_id(edges, fp, size)
            self._by_key[bkey] = [existing, set_id]
            return set_id
        for candidate in existing:
            if self._recs[candidate][0] == edges:
                return candidate
        self.collisions += 1
        set_id = self._new_id(edges, fp, size)
        existing.append(set_id)
        return set_id

    def _new_id(self, edges: FrozenSet[int], fp: int, size: int) -> int:
        recs = self._recs
        set_id = len(recs)
        recs.append((edges, fp, size))
        return set_id

    def intern(self, edge_ids: Iterable[int]) -> int:
        """Intern an arbitrary edge collection; returns its handle."""
        edges = frozenset(edge_ids)
        fp = 0
        for edge_id in edges:
            fp ^= self._code(edge_id)
        return self._intern(edges, fp, len(edges))

    def union1(self, set_id: int, edge_id: int) -> int:
        """Handle of ``set(set_id) | {edge_id}`` — the memoized Grow step.

        Miss-path discipline: the result's fingerprint is one XOR away, so
        a set the pool has *already interned* (reached through a different
        Grow/Merge path) is found by fingerprint and verified with
        allocation-free subset checks — no union is built, nothing is
        re-hashed.  Only genuinely new sets are materialized.
        """
        key = (set_id << self._SHIFT) | edge_id
        memo = self._union1
        out = memo.get(key)
        if out is not None:
            self.union_hits += 1
            return out
        recs = self._recs
        base, base_fp, base_size = recs[set_id]
        if edge_id in base:
            memo[key] = set_id
            return set_id
        codes = self._zobrist
        if edge_id >= len(codes):
            self._code(edge_id)
        fp = base_fp ^ codes[edge_id]
        size = base_size + 1
        bkey = (fp << self._SHIFT) | size
        existing = self._by_key.get(bkey)
        out = self._match_union1(existing, base, edge_id)
        if out is None:
            out = self._store_new(base | {edge_id}, fp, size, bkey, existing)
        memo[key] = out
        return out

    def _match_union1(self, existing, base: FrozenSet[int], edge_id: int) -> Optional[int]:
        """Verified candidate under a bucket key: base ⊆ c ∧ e ∈ c ∧
        |c| = |base|+1 ⟹ c = base ∪ {e}, without materializing the union."""
        if existing is None:
            return None
        recs = self._recs
        if type(existing) is int:
            candidate_set = recs[existing][0]
            if edge_id in candidate_set and base <= candidate_set:
                return existing
            return None
        for candidate in existing:
            candidate_set = recs[candidate][0]
            if edge_id in candidate_set and base <= candidate_set:
                return candidate
        return None

    def union2(self, id1: int, id2: int) -> int:
        """Handle of the union of two interned sets — the memoized Merge.

        Same miss-path discipline as :meth:`union1`: for disjoint operands
        (what Merge1 hands us) the union's fingerprint is ``fp1 ^ fp2``,
        and an already-interned result is recognized by two subset checks
        instead of building and hashing a frozenset.
        """
        if id1 == id2:
            return id1
        if id1 > id2:
            id1, id2 = id2, id1
        if not id1:  # union with the empty set
            return id2
        key = (id1 << self._SHIFT) | id2
        memo = self._union2
        out = memo.get(key)
        if out is not None:
            self.union_hits += 1
            return out
        recs = self._recs
        a, a_fp, a_size = recs[id1]
        b, b_fp, b_size = recs[id2]
        if a.isdisjoint(b):
            fp = a_fp ^ b_fp
            size = a_size + b_size
            bkey = (fp << self._SHIFT) | size
            existing = self._by_key.get(bkey)
            out = self._match_union2(existing, a, b)
            if out is None:
                out = self._store_new(a | b, fp, size, bkey, existing)
        else:
            # Overlapping operands (never produced by the engines' Merge1,
            # but the pool stays total): XOR cancelled the shared edges
            # twice; fold them back in and intern the materialized union.
            edges = a | b
            fp = a_fp ^ b_fp
            for edge_id in a & b:
                fp ^= self._code(edge_id)
            out = self._intern(edges, fp, len(edges))
        memo[key] = out
        return out

    def _match_union2(self, existing, a: FrozenSet[int], b: FrozenSet[int]) -> Optional[int]:
        """Verified candidate for a disjoint union: a ⊆ c ∧ b ⊆ c ∧
        |c| = |a|+|b| ⟹ c = a ∪ b."""
        if existing is None:
            return None
        recs = self._recs
        if type(existing) is int:
            candidate_set = recs[existing][0]
            if a <= candidate_set and b <= candidate_set:
                return existing
            return None
        for candidate in existing:
            candidate_set = recs[candidate][0]
            if a <= candidate_set and b <= candidate_set:
                return candidate
        return None

    def _store_new(self, edges: FrozenSet[int], fp: int, size: int, bkey: int, existing) -> int:
        """Register a set that failed candidate verification under ``bkey``."""
        set_id = self._new_id(edges, fp, size)
        if existing is None:
            self._by_key[bkey] = set_id
        elif isinstance(existing, int):
            self.collisions += 1
            self._by_key[bkey] = [existing, set_id]
        else:
            self.collisions += 1
            existing.append(set_id)
        return set_id


class ShardedEdgeSetPool(EdgeSetPool):
    """A thread-safe :class:`EdgeSetPool`: exact interning sharded by fingerprint.

    The pool's one correctness-critical race is the check-then-insert of
    ``_by_key`` — two threads interning the *same* new set must not both
    miss the lookup and allocate two handles.  Equal sets always have equal
    fingerprints, so serializing that step per **fingerprint shard**
    (``fp & (shards-1)`` picks the lock) closes the race while letting
    threads interning different sets proceed without contention; the shard
    lock is taken only on the slow path (memo miss + unverified bucket),
    never on a memo hit.

    Remaining shared state, and why it needs no shard lock under CPython:

    * ``_union1`` / ``_union2`` memo reads and writes are single dict ops
      (atomic under the GIL); concurrent writers racing on one key always
      write the *same* canonical handle, because the handle itself came out
      of the serialized interning step — the write is idempotent;
    * ``_recs`` appends go through one allocation lock so handle numbering
      is gap-free; published records are immutable, and a reader can only
      hold a handle that was published *after* its record was appended;
    * the lazy ``_zobrist`` code table extends under its own lock (a torn
      concurrent extend would hand two threads different codes for one
      edge id — i.e. two fingerprints for one set);
    * ``union_hits`` / ``collisions`` are telemetry: lost increments under
      contention are tolerated, counters stay approximate lower bounds.

    Handle *numbering* depends on thread interleaving (unlike the serial
    pool), but handles are opaque identities — the engines never order by
    them — so search results are unaffected; see tests/test_parallel.py.
    """

    #: Power of two; 16 shards keep contention negligible at the worker
    #: counts the dispatcher uses (≤ CPU count) without a lock per bucket.
    NUM_SHARDS = 16

    __slots__ = ("_shard_locks", "_alloc_lock", "_zobrist_lock")

    def __init__(self) -> None:
        super().__init__()
        self._shard_locks = [threading.Lock() for _ in range(self.NUM_SHARDS)]
        self._alloc_lock = threading.Lock()
        self._zobrist_lock = threading.Lock()

    # -- locked primitives ---------------------------------------------
    def _new_id(self, edges: FrozenSet[int], fp: int, size: int) -> int:
        with self._alloc_lock:
            return super()._new_id(edges, fp, size)

    def _code(self, edge_id: int) -> int:
        codes = self._zobrist
        if edge_id < len(codes):
            return codes[edge_id]
        with self._zobrist_lock:
            if edge_id >= len(self._zobrist):
                super()._code(edge_id)
        return self._zobrist[edge_id]

    # -- sharded constructors ------------------------------------------
    def intern(self, edge_ids: Iterable[int]) -> int:
        edges = frozenset(edge_ids)
        fp = 0
        for edge_id in edges:
            fp ^= self._code(edge_id)
        with self._shard_locks[fp & (self.NUM_SHARDS - 1)]:
            return self._intern(edges, fp, len(edges))

    def union1(self, set_id: int, edge_id: int) -> int:
        key = (set_id << self._SHIFT) | edge_id
        memo = self._union1
        out = memo.get(key)
        if out is not None:
            self.union_hits += 1
            return out
        base, base_fp, base_size = self._recs[set_id]
        if edge_id in base:
            memo[key] = set_id
            return set_id
        fp = base_fp ^ self._code(edge_id)
        size = base_size + 1
        bkey = (fp << self._SHIFT) | size
        with self._shard_locks[fp & (self.NUM_SHARDS - 1)]:
            existing = self._by_key.get(bkey)
            out = self._match_union1(existing, base, edge_id)
            if out is None:
                out = self._store_new(base | {edge_id}, fp, size, bkey, existing)
        memo[key] = out
        return out

    def union2(self, id1: int, id2: int) -> int:
        if id1 == id2:
            return id1
        if id1 > id2:
            id1, id2 = id2, id1
        if not id1:
            return id2
        key = (id1 << self._SHIFT) | id2
        memo = self._union2
        out = memo.get(key)
        if out is not None:
            self.union_hits += 1
            return out
        recs = self._recs
        a, a_fp, a_size = recs[id1]
        b, b_fp, b_size = recs[id2]
        if a.isdisjoint(b):
            fp = a_fp ^ b_fp
            size = a_size + b_size
            bkey = (fp << self._SHIFT) | size
            with self._shard_locks[fp & (self.NUM_SHARDS - 1)]:
                existing = self._by_key.get(bkey)
                out = self._match_union2(existing, a, b)
                if out is None:
                    out = self._store_new(a | b, fp, size, bkey, existing)
        else:
            edges = a | b
            fp = a_fp ^ b_fp
            for edge_id in a & b:
                fp ^= self._code(edge_id)
            with self._shard_locks[fp & (self.NUM_SHARDS - 1)]:
                out = self._intern(edges, fp, len(edges))
        memo[key] = out
        return out


#: Empty-slot byte pattern: an ``array('q')`` of -1s marks every slot free
#: (keys/handles are always >= 0, so -1 can never collide with a live entry;
#: 0 cannot serve as the marker because key 0 and handle 0 are both legal).
def _minus_ones(capacity: int) -> array:
    return array("q", b"\xff" * (8 * capacity))


class _IntTable:
    """Flat open-addressed int→int map: the pool's memo lanes.

    Two parallel ``array('q')`` lanes (keys / values) with linear probing —
    the cache-dense replacement for the ``_union1``/``_union2`` dicts,
    whose boxed-int entries scatter ~100 bytes per memo across the heap.
    Slot choice is Fibonacci hashing folded over both halves of the packed
    64-bit key (``set_id << 32 | operand``): consecutive handle/edge pairs
    land on unrelated slots instead of clustering a linear-probe run.

    Writes publish value-before-key so a lock-free reader (the sharded
    pool's memo-hit fast path) either misses a half-written entry or sees
    it complete; growth builds a whole new table for the owner to swap in
    one reference assignment.  ``put`` assumes a free slot exists — owners
    grow at 3/4 load *before* inserting.
    """

    __slots__ = ("keys", "vals", "mask", "filled", "limit")

    def __init__(self, capacity: int = 1024) -> None:
        # capacity must be a power of two (mask-wrapped probing).
        self.keys = _minus_ones(capacity)
        self.vals = array("q", bytes(8 * capacity))
        self.mask = capacity - 1
        self.filled = 0
        self.limit = capacity - (capacity >> 2)

    def get(self, key: int) -> int:
        """The stored value, or -1 (values are handles, always >= 0)."""
        keys = self.keys
        mask = self.mask
        h = (key * 0x9E3779B97F4A7C15) & _MASK64
        slot = (h ^ (h >> 32)) & mask
        while True:
            k = keys[slot]
            if k == key:
                return self.vals[slot]
            if k == -1:
                return -1
            slot = (slot + 1) & mask

    def put(self, key: int, val: int) -> None:
        keys = self.keys
        mask = self.mask
        h = (key * 0x9E3779B97F4A7C15) & _MASK64
        slot = (h ^ (h >> 32)) & mask
        while True:
            k = keys[slot]
            if k == -1:
                self.vals[slot] = val
                keys[slot] = key  # publish after the value is in place
                self.filled += 1
                return
            if k == key:
                self.vals[slot] = val
                return
            slot = (slot + 1) & mask

    def grown(self) -> "_IntTable":
        new = _IntTable(2 * (self.mask + 1))
        keys = self.keys
        vals = self.vals
        for slot, k in enumerate(keys):
            if k != -1:
                new.put(k, vals[slot])
        return new


class _FpTable:
    """Flat open-addressed fingerprint→handle *multimap*: ``_by_key`` flattened.

    Parallel ``array('Q')`` fingerprints and ``array('q')`` handles.  Unlike
    the dict, colliding sets (same fingerprint — or same fingerprint and
    size) are not chained in a side list: they simply occupy successive
    probe slots, and a lookup walks **every** slot whose fingerprint
    matches until the probe run ends, exactly verifying each candidate
    against the caller's set — the dict pool's exact-verification fallback,
    preserved slot by slot.  Fingerprints are splitmix64 XORs (uniform), so
    the raw fingerprint is its own hash.

    Writes publish fingerprint-before-handle (a probe only considers slots
    with ``handle >= 0``); occupancy is monotone (no deletions), so a
    lock-free probe that ends at a free slot has seen every published entry
    of its fingerprint.
    """

    __slots__ = ("fps", "ids", "mask", "filled", "limit")

    def __init__(self, capacity: int = 1024) -> None:
        self.fps = array("Q", bytes(8 * capacity))
        self.ids = _minus_ones(capacity)
        self.mask = capacity - 1
        self.filled = 0
        self.limit = capacity - (capacity >> 2)

    def insert(self, fp: int, set_id: int) -> None:
        """File ``fp -> set_id`` in the first free probe slot (no growth)."""
        fps = self.fps
        ids = self.ids
        mask = self.mask
        slot = fp & mask
        while ids[slot] >= 0:
            slot = (slot + 1) & mask
        fps[slot] = fp
        ids[slot] = set_id  # publish after the fingerprint is in place
        self.filled += 1

    def grown(self) -> "_FpTable":
        new = _FpTable(2 * (self.mask + 1))
        fps = self.fps
        ids = self.ids
        for slot, sid in enumerate(ids):
            if sid >= 0:
                new.insert(fps[slot], sid)
        return new


class FlatEdgeSetPool(EdgeSetPool):
    """An :class:`EdgeSetPool` whose hot maps live in flat arrays.

    Same handles, same counters, same exact-interning guarantees — given
    one operation sequence this pool assigns the identical handle numbering
    and hit/miss/collision counts as the dict pool, so searches over either
    are bit-identical.  What changes is the storage: the ``_by_key`` dict
    becomes an open-addressed fingerprint table (:class:`_FpTable`) and the
    two union memos become flat int lanes (:class:`_IntTable`) — contiguous
    ``array`` storage instead of one boxed-int dict entry per memo, which
    is what keeps the pool's footprint sane when a million-node search
    interns hundreds of thousands of sets.  Selected by
    ``SearchConfig(dense_ids=True)`` (the default); the dict pool remains
    the ``dense_ids=False`` A/B baseline.
    """

    __slots__ = ("_fp_t", "_u1", "_u2")

    def __init__(self) -> None:
        super().__init__()
        # The dict maps are dead weight here; None them so any base-class
        # path that was missed fails loudly instead of diverging silently.
        self._by_key = None
        self._union1 = None
        self._union2 = None
        self._fp_t = _FpTable()
        self._fp_t.insert(0, 0)  # the EMPTY record (fp 0, handle 0)
        self._u1 = _IntTable()
        self._u2 = _IntTable()

    @property
    def union_misses(self) -> int:
        """Memo misses = memo entries filed, as in the dict pool."""
        return self._u1.filled + self._u2.filled

    # -- flat-table plumbing -------------------------------------------
    def _insert_fp(self, fp: int, set_id: int) -> None:
        t = self._fp_t
        if t.filled >= t.limit:
            self._fp_t = t = t.grown()
        t.insert(fp, set_id)

    def _u1_put(self, key: int, val: int) -> None:
        t = self._u1
        if t.filled >= t.limit:
            self._u1 = t = t.grown()
        t.put(key, val)

    def _u2_put(self, key: int, val: int) -> None:
        t = self._u2
        if t.filled >= t.limit:
            self._u2 = t = t.grown()
        t.put(key, val)

    # -- interning over the fingerprint table --------------------------
    def _intern(self, edges: FrozenSet[int], fp: int, size: int) -> int:
        t = self._fp_t
        fps = t.fps
        ids = t.ids
        mask = t.mask
        recs = self._recs
        slot = fp & mask
        bucket_seen = False
        while True:
            sid = ids[slot]
            if sid < 0:
                break
            if fps[slot] == fp:
                rec = recs[sid]
                if rec[2] == size:
                    if rec[0] == edges:
                        return sid
                    bucket_seen = True  # same (fp, size), different set
            slot = (slot + 1) & mask
        if bucket_seen:
            self.collisions += 1
        set_id = self._new_id(edges, fp, size)
        self._insert_fp(fp, set_id)
        return set_id

    def _union1_slow(self, base: FrozenSet[int], edge_id: int, fp: int, size: int) -> int:
        """Find-or-create ``base | {edge_id}`` by fingerprint (memo missed).

        Candidate verification is the dict pool's, with the bucket's size
        component checked explicitly (the dict packed it into the key):
        ``|c| = |base|+1 ∧ e ∈ c ∧ base ⊆ c ⟹ c = base ∪ {e}``.
        """
        t = self._fp_t
        fps = t.fps
        ids = t.ids
        mask = t.mask
        recs = self._recs
        slot = fp & mask
        bucket_seen = False
        while True:
            sid = ids[slot]
            if sid < 0:
                break
            if fps[slot] == fp:
                rec = recs[sid]
                if rec[2] == size:
                    candidate = rec[0]
                    if edge_id in candidate and base <= candidate:
                        return sid
                    bucket_seen = True
            slot = (slot + 1) & mask
        if bucket_seen:
            self.collisions += 1
        set_id = self._new_id(base | {edge_id}, fp, size)
        self._insert_fp(fp, set_id)
        return set_id

    def _union2_slow(self, a: FrozenSet[int], b: FrozenSet[int], fp: int, size: int) -> int:
        """Find-or-create the disjoint union ``a | b`` by fingerprint."""
        t = self._fp_t
        fps = t.fps
        ids = t.ids
        mask = t.mask
        recs = self._recs
        slot = fp & mask
        bucket_seen = False
        while True:
            sid = ids[slot]
            if sid < 0:
                break
            if fps[slot] == fp:
                rec = recs[sid]
                if rec[2] == size:
                    candidate = rec[0]
                    if a <= candidate and b <= candidate:
                        return sid
                    bucket_seen = True
            slot = (slot + 1) & mask
        if bucket_seen:
            self.collisions += 1
        set_id = self._new_id(a | b, fp, size)
        self._insert_fp(fp, set_id)
        return set_id

    # -- memoized constructors -----------------------------------------
    def union1(self, set_id: int, edge_id: int) -> int:
        key = (set_id << self._SHIFT) | edge_id
        out = self._u1.get(key)
        if out >= 0:
            self.union_hits += 1
            return out
        base, base_fp, base_size = self._recs[set_id]
        if edge_id in base:
            self._u1_put(key, set_id)
            return set_id
        fp = base_fp ^ self._code(edge_id)
        out = self._union1_slow(base, edge_id, fp, base_size + 1)
        self._u1_put(key, out)
        return out

    def union2(self, id1: int, id2: int) -> int:
        if id1 == id2:
            return id1
        if id1 > id2:
            id1, id2 = id2, id1
        if not id1:
            return id2
        key = (id1 << self._SHIFT) | id2
        out = self._u2.get(key)
        if out >= 0:
            self.union_hits += 1
            return out
        recs = self._recs
        a, a_fp, a_size = recs[id1]
        b, b_fp, b_size = recs[id2]
        if a.isdisjoint(b):
            out = self._union2_slow(a, b, a_fp ^ b_fp, a_size + b_size)
        else:
            edges = a | b
            fp = a_fp ^ b_fp
            for edge_id in a & b:
                fp ^= self._code(edge_id)
            out = self._intern(edges, fp, len(edges))
        self._u2_put(key, out)
        return out


class ShardedFlatEdgeSetPool(FlatEdgeSetPool):
    """The thread-safe :class:`FlatEdgeSetPool` — flat storage under the
    sharded pool's locking discipline.

    The *decision* "no equal set exists, allocate a handle" is serialized
    per fingerprint shard exactly as in :class:`ShardedEdgeSetPool` (equal
    sets have equal fingerprints, so same-set racers share a shard lock).
    What flat storage adds is that the physical structures are shared
    arrays, so every **mutation** — fingerprint-table insert, memo put,
    growth — additionally funnels through one table lock (writes are
    miss-path-only, so this lock sees a small fraction of traffic).
    Readers stay lock-free: they snapshot the table object once (growth
    swaps in a whole new table, never mutates a published one), probes see
    entries only after their value-before-key publication completes, and
    occupancy is monotone — a probe ending at a free slot has seen every
    published entry of its fingerprint.  A racing reader that misses an
    in-flight entry simply falls to the locked slow path and re-resolves.

    Shard-probe staleness is harmless for correctness for the same reason
    it is in the dict pool: only same-fingerprint inserts could invalidate
    a "not found" decision, and those are serialized by the shard lock.
    """

    NUM_SHARDS = 16

    __slots__ = ("_shard_locks", "_alloc_lock", "_zobrist_lock", "_table_lock")

    def __init__(self) -> None:
        super().__init__()
        self._shard_locks = [threading.Lock() for _ in range(self.NUM_SHARDS)]
        self._alloc_lock = threading.Lock()
        self._zobrist_lock = threading.Lock()
        self._table_lock = threading.Lock()

    # -- locked primitives ---------------------------------------------
    def _new_id(self, edges: FrozenSet[int], fp: int, size: int) -> int:
        with self._alloc_lock:
            return EdgeSetPool._new_id(self, edges, fp, size)

    def _code(self, edge_id: int) -> int:
        codes = self._zobrist
        if edge_id < len(codes):
            return codes[edge_id]
        with self._zobrist_lock:
            if edge_id >= len(self._zobrist):
                EdgeSetPool._code(self, edge_id)
        return self._zobrist[edge_id]

    def _insert_fp(self, fp: int, set_id: int) -> None:
        with self._table_lock:
            super()._insert_fp(fp, set_id)

    def _u1_put(self, key: int, val: int) -> None:
        with self._table_lock:
            super()._u1_put(key, val)

    def _u2_put(self, key: int, val: int) -> None:
        with self._table_lock:
            super()._u2_put(key, val)

    # -- sharded constructors ------------------------------------------
    def intern(self, edge_ids: Iterable[int]) -> int:
        edges = frozenset(edge_ids)
        fp = 0
        for edge_id in edges:
            fp ^= self._code(edge_id)
        with self._shard_locks[fp & (self.NUM_SHARDS - 1)]:
            return self._intern(edges, fp, len(edges))

    def union1(self, set_id: int, edge_id: int) -> int:
        key = (set_id << self._SHIFT) | edge_id
        out = self._u1.get(key)
        if out >= 0:
            self.union_hits += 1
            return out
        base, base_fp, base_size = self._recs[set_id]
        if edge_id in base:
            self._u1_put(key, set_id)
            return set_id
        fp = base_fp ^ self._code(edge_id)
        with self._shard_locks[fp & (self.NUM_SHARDS - 1)]:
            out = self._union1_slow(base, edge_id, fp, base_size + 1)
        self._u1_put(key, out)
        return out

    def union2(self, id1: int, id2: int) -> int:
        if id1 == id2:
            return id1
        if id1 > id2:
            id1, id2 = id2, id1
        if not id1:
            return id2
        key = (id1 << self._SHIFT) | id2
        out = self._u2.get(key)
        if out >= 0:
            self.union_hits += 1
            return out
        recs = self._recs
        a, a_fp, a_size = recs[id1]
        b, b_fp, b_size = recs[id2]
        if a.isdisjoint(b):
            fp = a_fp ^ b_fp
            with self._shard_locks[fp & (self.NUM_SHARDS - 1)]:
                out = self._union2_slow(a, b, fp, a_size + b_size)
        else:
            edges = a | b
            fp = a_fp ^ b_fp
            for edge_id in a & b:
                fp ^= self._code(edge_id)
            with self._shard_locks[fp & (self.NUM_SHARDS - 1)]:
                out = self._intern(edges, fp, len(edges))
        self._u2_put(key, out)
        return out


class FrozenEdgeSets:
    """The identity pool: handles *are* frozensets (the seed representation).

    Selected with ``SearchConfig(interning=False)``; used as the baseline of
    the interning micro-bench and the live half of the equivalence suite.
    Stateless apart from telemetry counters, so one instance is safe to
    share across threads as-is (lost counter increments tolerated).
    """

    EMPTY: FrozenSet[int] = frozenset()

    __slots__ = ("union_hits", "union_misses", "collisions")

    def __init__(self) -> None:
        self.union_hits = 0
        self.union_misses = 0
        self.collisions = 0

    def edges(self, set_id: FrozenSet[int]) -> FrozenSet[int]:
        return set_id

    def size(self, set_id: FrozenSet[int]) -> int:
        return len(set_id)

    def __len__(self) -> int:
        return 0  # nothing is interned

    def intern(self, edge_ids: Iterable[int]) -> FrozenSet[int]:
        return frozenset(edge_ids)

    def union1(self, set_id: FrozenSet[int], edge_id: int) -> FrozenSet[int]:
        return set_id | {edge_id}

    def union2(self, id1: FrozenSet[int], id2: FrozenSet[int]) -> FrozenSet[int]:
        return id1 | id2


def make_pool(interning: bool, thread_safe: bool = False, dense_ids: bool = True):
    """The pool implementation for a run: interned (sharded when shared
    across threads) or the frozenset fallback (inherently shareable).

    ``dense_ids`` picks the flat-array pool storage (the default); the dict
    pools remain the ``dense_ids=False`` A/B baseline.  Both assign the
    same handle numbering for a given operation sequence."""
    if not interning:
        return FrozenEdgeSets()
    if dense_ids:
        return ShardedFlatEdgeSetPool() if thread_safe else FlatEdgeSetPool()
    return ShardedEdgeSetPool() if thread_safe else EdgeSetPool()


#: Containers :func:`approx_bytes` descends into element-wise.
_SIZED_CONTAINERS = (list, tuple, set, frozenset)
#: Leaves whose ``getsizeof`` is already their full footprint.
_ATOMIC_TYPES = (str, bytes, bytearray, int, float, complex, bool, type(None))


def approx_bytes(value: Any, _seen: Optional[set] = None) -> int:
    """Approximate deep memory footprint of ``value`` in bytes.

    The size-aware eviction measure of :class:`ResultCache`: a
    ``sys.getsizeof`` walk over containers, dicts, and object attributes
    (``__dict__`` and ``__slots__``), deduplicating shared sub-objects
    *within one value* by identity.  Approximate by design — objects shared
    *between* cache entries are charged to each entry (a conservative
    overestimate), and exotic C-level layouts fall back to their shallow
    size — the point is a stable, cheap eviction signal, not an accountant.

    The walk keeps an explicit stack instead of recursing: cached payloads
    are caller-supplied, and a deeply nested one (a few thousand levels of
    tuples is enough) must not blow the interpreter's recursion limit from
    inside a cache ``put`` mid-query.  Depth is bounded by memory, not by
    ``sys.getrecursionlimit()``.
    """
    seen = set() if _seen is None else _seen
    total = 0
    stack = [value]
    while stack:
        obj = stack.pop()
        oid = id(obj)
        if oid in seen:
            continue
        seen.add(oid)
        total += sys.getsizeof(obj)
        if isinstance(obj, _ATOMIC_TYPES):
            continue
        if isinstance(obj, dict):
            for key, item in obj.items():
                stack.append(key)
                stack.append(item)
            continue
        if isinstance(obj, _SIZED_CONTAINERS):
            stack.extend(obj)
            continue
        attrs = getattr(obj, "__dict__", None)
        if attrs is not None:
            stack.append(attrs)
        for name in getattr(type(obj), "__slots__", ()):
            try:
                stack.append(getattr(obj, name))
            except AttributeError:
                continue
    return total


class ResultCache:
    """A bounded LRU map — the eviction bound of the context caches.

    Bounded two ways: by entry count (``maxsize``, always) and — when
    ``max_bytes`` is set — by the *approximate payload bytes* of the stored
    values (:func:`approx_bytes`), so a long-lived context is limited by
    memory rather than by how many entries its results happen to span.
    Eviction pops least-recently-used entries until both bounds hold; a
    single value larger than ``max_bytes`` is therefore never retained.

    ``None`` is never a legal value (``get`` uses it as the miss marker).
    Hits refresh recency.  ``thread_safe=True`` takes a lock around every
    LRU mutation (the ``OrderedDict`` reorder on hit makes even ``get`` a
    write).  Counters are plain attributes so callers can fold them into
    reports without extra accessors; ``size_walks`` counts
    :func:`approx_bytes` deep walks — exactly one per *distinct inserted
    value*, because re-putting the identical object under its key (the
    memo-replay path) reuses the size cached at first insertion.
    """

    __slots__ = (
        "maxsize",
        "max_bytes",
        "total_bytes",
        "_data",
        "_nbytes",
        "_lock",
        "hits",
        "misses",
        "evictions",
        "size_walks",
    )

    def __init__(self, maxsize: int, max_bytes: Optional[int] = None, thread_safe: bool = False):
        if maxsize < 1:
            raise ValueError("ResultCache needs maxsize >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("ResultCache needs max_bytes >= 1 (or None)")
        self.maxsize = maxsize
        self.max_bytes = max_bytes
        self.total_bytes = 0
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self._nbytes: Dict[Any, int] = {}
        self._lock = threading.Lock() if thread_safe else None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.size_walks = 0

    def get(self, key):
        lock = self._lock
        if lock is None:
            return self._get(key)
        with lock:
            return self._get(key)

    def _get(self, key):
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        if value is None:
            raise ValueError("ResultCache cannot store None")
        lock = self._lock
        if lock is None:
            return self._put(key, value)
        with lock:
            return self._put(key, value)

    def _put(self, key, value) -> None:
        data = self._data
        if key in data:
            data.move_to_end(key)
            if data[key] is value:
                # Re-filing the identical object (memo replay runs once
                # per fan-out, batch evaluation once per query): the
                # cached deep size is still exact, so this is a recency
                # refresh only — no second size walk.
                return
            self.total_bytes -= self._nbytes.get(key, 0)
        data[key] = value
        # Sizing is skipped entirely for unbounded-bytes caches: the walk
        # is the expensive part, the counters are just ints.
        if self.max_bytes is not None:
            nbytes = approx_bytes(value)
            self.size_walks += 1
        else:
            nbytes = 0
        self._nbytes[key] = nbytes
        self.total_bytes += nbytes
        max_bytes = self.max_bytes
        while data and (
            len(data) > self.maxsize or (max_bytes is not None and self.total_bytes > max_bytes)
        ):
            evicted_key, _ = data.popitem(last=False)
            self.total_bytes -= self._nbytes.pop(evicted_key, 0)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def clear(self) -> None:
        """Drop every entry (hit/miss/eviction counters are kept).

        Used when the graph a context is bound to mutates: every cached
        payload references pre-mutation state, so the whole cache is stale
        at once and entry-by-entry invalidation would be wasted work.
        """
        lock = self._lock
        if lock is None:
            return self._clear()
        with lock:
            return self._clear()

    def _clear(self) -> None:
        self._data.clear()
        self._nbytes.clear()
        self.total_bytes = 0


class SearchContext:
    """Query-scoped search state shared by the per-CTP evaluations.

    One context owns one pool; every engine run of the query *adopts* it
    (:meth:`adopt`) instead of constructing pool state internally, so

    * edge-set handles are stable across the query's CTPs — a set one CTP
      interned is a memo hit for the next, and handle-keyed caches survive
      from run to run;
    * ``rooted_cache`` maps ``(root, eset handle, config fingerprint)`` to
      the materialized payload of a reported rooted tree (edges, nodes,
      score), so a CTP that re-discovers a tree a sibling already reported
      skips re-materialization and re-scoring;
    * ``ctp_cache`` memoizes whole *complete* CTP result sets under
      ``(graph, algorithm, seed sets, config fingerprint)`` — the
      evaluator's cross-CTP memo for repeated CTPs (same seeds, same
      filters), e.g. the same CONNECT under several tree variables or
      repeated evaluations across BGP embeddings.  The graph rides in the
      key by *identity*, so an explicit context reused across queries can
      never serve one graph's results for another, and the LRU owns every
      reference (evicting an entry frees its seed tuples and result set).

    Sharing is strictly representational: per-run search state (``hist``,
    ``rooted_keys``, queues, seed masks) stays inside each engine run, so a
    shared context changes no search outcome — only how much work each run
    repeats.  Adoption is refused (the engine falls back to a private
    pool) when the run's graph or interning mode differs from the
    context's; refusals are counted, never raised.

    ``thread_safe=True`` builds the concurrency-safe variant for the
    parallel dispatcher (:mod:`repro.query.parallel`): the pool is a
    :class:`ShardedEdgeSetPool`, both caches lock their LRU mutations, and
    :meth:`adopt` serializes its graph-binding check.  ``*_cache_bytes``
    optionally bound each cache by approximate payload bytes
    (:func:`approx_bytes`) on top of the entry-count bound — the memory
    bound that matters for explicit long-lived contexts.
    """

    __slots__ = (
        "interning",
        "dense_ids",
        "thread_safe",
        "pool",
        "rooted_cache",
        "ctp_cache",
        "runs",
        "rejects",
        "generation_flushes",
        "rebinds",
        "_graph",
        "_graph_generation",
        "_adopt_lock",
    )

    def __init__(
        self,
        interning: bool = True,
        ctp_cache_size: int = 64,
        rooted_cache_size: int = 8192,
        thread_safe: bool = False,
        ctp_cache_bytes: Optional[int] = None,
        rooted_cache_bytes: Optional[int] = None,
        dense_ids: bool = True,
    ):
        self.interning = interning
        self.dense_ids = dense_ids
        self.thread_safe = thread_safe
        self.pool = make_pool(interning, thread_safe, dense_ids)
        self.rooted_cache = ResultCache(
            rooted_cache_size, max_bytes=rooted_cache_bytes, thread_safe=thread_safe
        )
        self.ctp_cache = ResultCache(
            ctp_cache_size, max_bytes=ctp_cache_bytes, thread_safe=thread_safe
        )
        self.runs = 0
        self.rejects = 0
        self.generation_flushes = 0
        self.rebinds = 0
        self._graph: Optional[object] = None  # strong ref: pins id() validity
        self._graph_generation: Optional[int] = None
        self._adopt_lock = threading.Lock() if thread_safe else None

    # ------------------------------------------------------------------
    def adopt(self, graph, interning: bool, dense_ids: bool = True):
        """The shared pool for an engine run, or ``None`` to refuse.

        ``graph`` must be the run's *resolved* backend graph: handles and
        cached payloads reference edge ids of exactly one graph, so the
        context binds itself to the first graph it sees and refuses any
        other (and any run whose interning or dense-ids mode differs from
        the pool's — the pool's physical storage is one or the other).
        Under ``thread_safe`` the first-graph binding is serialized so two
        concurrent first adoptions cannot both bind.
        """
        lock = self._adopt_lock
        if lock is None:
            return self._adopt(graph, interning, dense_ids)
        with lock:
            return self._adopt(graph, interning, dense_ids)

    def _adopt(self, graph, interning: bool, dense_ids: bool):
        if interning != self.interning or dense_ids != self.dense_ids:
            self.rejects += 1
            return None
        if self._graph is None:
            self._graph = graph
            self._graph_generation = getattr(graph, "generation", 0)
        elif self._graph is not graph:
            # MVCC views: a server pins one immutable read view per request
            # (base CSR or delta overlay), so the resolved graph object
            # changes per generation while the underlying graph — and the
            # edge-id space the interned sets reference — stays the same.
            # Views of the bound graph's lineage (shared ``view_source``,
            # or the source itself) REBIND instead of refusing: edge ids
            # are never reused across generations, so the interned sets
            # stay valid, and both result caches carry graph identity
            # and/or generation fingerprints in their keys, so no flush is
            # needed — entries for other generations simply stop hitting.
            mine = getattr(self._graph, "view_source", None) or self._graph
            theirs = getattr(graph, "view_source", None) or graph
            if mine is not theirs:
                self.rejects += 1
                return None
            self._graph = graph
            self._graph_generation = getattr(graph, "generation", 0)
            self.rebinds += 1
        else:
            generation = getattr(graph, "generation", 0)
            if generation != self._graph_generation:
                # The bound graph mutated since the last run: every cached
                # result set references pre-mutation state.  The interned
                # edge *sets* stay valid — edge ids are never reused, a set
                # of ids means the same set after an append or a weight
                # update — but the result caches must flush wholesale.
                # (Cross-CTP memo keys also carry graph_fingerprint, so
                # they would miss anyway; the rooted-result cache has no
                # graph component in its key and relies on this flush.)
                self.rooted_cache.clear()
                self.ctp_cache.clear()
                self.generation_flushes += 1
                self._graph_generation = generation
        self.runs += 1
        return self.pool

    # ------------------------------------------------------------------
    @staticmethod
    def config_fingerprint(config) -> Tuple:
        """The search-relevant identity of a :class:`SearchConfig`.

        Every field that can change a result set (or its truncation) is
        included; ``shared_context``, ``parallelism``, and ``scheduling``
        are representation/dispatch-only and deliberately absent — a
        parallel (or cost-model-scheduled) evaluation may serve (and
        file) the same memo entries as a serial one.
        """
        return (
            config.uni,
            config.labels,
            config.max_edges,
            config.timeout,
            config.limit,
            config.score,
            config.top_k,
            config.order,
            config.balanced_queues,
            config.balance_ratio,
            config.max_trees,
            config.backend,
            config.interning,
            config.strict_merge2,
            config.mo_inject_always,
            config.dense_ids,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def graph_fingerprint(graph) -> Tuple[int, int, int]:
        """Mutation fingerprint of a graph: counts + mutation generation.

        The count pair catches growth, but it misses *same-size* mutations
        (update an edge weight; in a future delta overlay, delete one edge
        and add another) — two different graphs with identical counts
        would collide and serve stale cached results.  The monotonic
        :attr:`~repro.graph.graph.Graph.generation` counter is bumped by
        every mutator, so folding it in invalidates entries cached before
        *any* mutation; the counts are kept for objects that predate the
        counter (``getattr`` default 0).
        """
        return (graph.num_nodes, graph.num_edges, getattr(graph, "generation", 0))

    # ------------------------------------------------------------------
    def stats_dict(self) -> Dict[str, int]:
        """Counters for the evaluator's query report / the CLI."""
        pool = self.pool
        return {
            "runs": self.runs,
            "rejects": self.rejects,
            "generation_flushes": self.generation_flushes,
            "rebinds": self.rebinds,
            "pool_sets": len(pool),
            "pool_union_hits": pool.union_hits,
            "pool_union_misses": pool.union_misses,
            "ctp_cache_hits": self.ctp_cache.hits,
            "ctp_cache_misses": self.ctp_cache.misses,
            "ctp_cache_evictions": self.ctp_cache.evictions,
            "rooted_cache_hits": self.rooted_cache.hits,
            "rooted_cache_misses": self.rooted_cache.misses,
            "rooted_cache_evictions": self.rooted_cache.evictions,
            "ctp_cache_bytes": self.ctp_cache.total_bytes,
            "rooted_cache_bytes": self.rooted_cache.total_bytes,
        }


def adopt_pool(context: Optional[SearchContext], graph, interning: bool, dense_ids: bool = True):
    """Shared pool adoption for an engine run.

    Returns ``(pool, adopted_context, baseline)``: the pool to use (the
    context's when adoption succeeds, a fresh private one otherwise), the
    context iff adopted (``None`` tells the engine to skip context
    caches), and the pool-counter baseline for :func:`pool_stats_delta` —
    the shared pool's current state, or zeros for a private pool so the
    per-run stats keep the seed semantics (absolute values).
    """
    pool = context.adopt(graph, interning, dense_ids) if context is not None else None
    if pool is None:
        return make_pool(interning, dense_ids=dense_ids), None, (0, 0, 0)
    return pool, context, (len(pool), pool.union_hits, pool.union_misses)


def pool_stats_delta(stats, pool, baseline) -> None:
    """Fill a run's pool counters as deltas against its adoption baseline.

    When several runs share one pool *concurrently* (a thread-safe context
    under the parallel dispatcher) the deltas attribute overlapping
    activity: counters stay monotone, so values are non-negative, but a
    run's delta includes sibling workers' interning.  Per-run pool
    attribution is only exact under serial dispatch — search-outcome
    counters (grows, merges, results) are unaffected either way.
    """
    len0, hits0, misses0 = baseline
    stats.pool_sets = len(pool) - len0
    stats.pool_union_hits = pool.union_hits - hits0
    stats.pool_union_misses = pool.union_misses - misses0
