"""Structural analysis of CTP results (Definitions 4.2, 4.4-4.8).

The paper's completeness guarantees are *structural*: whether MoLESP is
guaranteed to find a result depends on the shape of its simple tree
decomposition.  This module makes those definitions executable:

* :func:`simple_tree_decomposition` — the unique partition of a result's
  edges into simple edge sets (Definition 4.6);
* :func:`classify_piece` — path / rooted merge / complex (Defs 4.5, 4.8);
* :func:`is_p_piecewise_simple` — Definition 4.7;
* :func:`molesp_guaranteed` — the union of Properties 4, 7 and 9: ``True``
  means MoLESP *must* find this result, whatever the execution order.

Tests use these to verify the Properties wholesale: every complete-search
result classified as guaranteed must appear in MoLESP's output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.errors import SearchError
from repro.graph.graph import Graph


def tree_degrees(graph: Graph, edges: Iterable[int]) -> Dict[int, int]:
    """Degree of every node within the edge set."""
    degrees: Dict[int, int] = {}
    for edge_id in edges:
        edge = graph.edge(edge_id)
        degrees[edge.source] = degrees.get(edge.source, 0) + 1
        degrees[edge.target] = degrees.get(edge.target, 0) + 1
    return degrees


def is_edge_set(graph: Graph, edges: FrozenSet[int], seed_nodes: Set[int]) -> bool:
    """Definition 4.2: a tree where at most one leaf is not a seed."""
    from repro.ctp.results import is_tree

    if not is_tree(graph, edges):
        return False
    degrees = tree_degrees(graph, edges)
    non_seed_leaves = sum(1 for node, d in degrees.items() if d == 1 and node not in seed_nodes)
    return non_seed_leaves <= 1


def simple_tree_decomposition(
    graph: Graph,
    edges: FrozenSet[int],
    seed_nodes: Set[int],
) -> List[FrozenSet[int]]:
    """The unique simple tree decomposition theta(t) (Definition 4.6).

    Splits the tree at its internal seed nodes: two edges belong to the
    same simple edge set iff they are connected through non-seed nodes.
    Requires every leaf of the tree to be a seed (i.e. ``edges`` is a CTP
    result); raises :class:`SearchError` otherwise, because theta is only
    defined on results.
    """
    if not edges:
        return []
    degrees = tree_degrees(graph, edges)
    for node, degree in degrees.items():
        if degree == 1 and node not in seed_nodes:
            raise SearchError(f"not a CTP result: non-seed leaf {node}")
    # union-find over edges; merge edges sharing a *non-seed* endpoint
    edge_list = sorted(edges)
    position = {edge_id: index for index, edge_id in enumerate(edge_list)}
    parent = list(range(len(edge_list)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    incident: Dict[int, List[int]] = {}
    for edge_id in edge_list:
        edge = graph.edge(edge_id)
        for node in (edge.source, edge.target):
            incident.setdefault(node, []).append(edge_id)
    for node, node_edges in incident.items():
        if node in seed_nodes:
            continue
        first = position[node_edges[0]]
        for other in node_edges[1:]:
            ra, rb = find(first), find(position[other])
            if ra != rb:
                parent[ra] = rb
    pieces: Dict[int, Set[int]] = {}
    for edge_id in edge_list:
        pieces.setdefault(find(position[edge_id]), set()).add(edge_id)
    return [frozenset(piece) for piece in pieces.values()]


@dataclass(frozen=True)
class PieceShape:
    """Classification of one simple edge set."""

    kind: str  # "path" | "rooted-merge" | "complex"
    leaves: int
    #: the single branching node for rooted merges (None otherwise)
    center: int | None = None


def classify_piece(graph: Graph, piece: FrozenSet[int], seed_nodes: Set[int]) -> PieceShape:
    """Classify a simple edge set (Definitions 4.5 and 4.8).

    * ``path`` — no branching node: a 2-simple edge set (two seed leaves);
    * ``rooted-merge`` — exactly one branching node, which is not a seed:
      a ``(u, n)``-rooted merge with ``u`` = number of leaves;
    * ``complex`` — two or more branching nodes (or a seed branching
      node): outside every MoLESP guarantee (e.g. Figure 6's result).
    """
    degrees = tree_degrees(graph, piece)
    leaves = sum(1 for d in degrees.values() if d == 1)
    branching = [node for node, d in degrees.items() if d >= 3]
    if not branching:
        return PieceShape("path", leaves)
    if len(branching) == 1 and branching[0] not in seed_nodes:
        return PieceShape("rooted-merge", leaves, center=branching[0])
    return PieceShape("complex", leaves)


def is_p_piecewise_simple(
    graph: Graph,
    edges: FrozenSet[int],
    seed_nodes: Set[int],
    p: int,
) -> bool:
    """Definition 4.7: every piece of theta(t) has at most ``p`` leaves."""
    for piece in simple_tree_decomposition(graph, edges, seed_nodes):
        degrees = tree_degrees(graph, piece)
        leaves = sum(1 for d in degrees.values() if d == 1)
        if leaves > p:
            return False
    return True


def molesp_guaranteed(graph: Graph, edges: FrozenSet[int], seed_nodes: Set[int]) -> bool:
    """Is this result covered by MoLESP's guarantees (Properties 4, 7, 9)?

    ``True`` when every piece of the simple tree decomposition is a path
    (2-simple) or a ``(u, n)``-rooted merge around a non-seed center —
    exactly the class of Property 9, which subsumes Properties 4 and 7.
    Single-node results (no edges) are trivially guaranteed.
    """
    if not edges:
        return True
    for piece in simple_tree_decomposition(graph, edges, seed_nodes):
        if classify_piece(graph, piece, seed_nodes).kind == "complex":
            return False
    return True


def result_shape(graph: Graph, edges: FrozenSet[int]) -> str:
    """Coarse shape label for reporting: node / edge / path / star / tree."""
    if not edges:
        return "node"
    if len(edges) == 1:
        return "edge"
    degrees = tree_degrees(graph, edges)
    branching = [node for node, d in degrees.items() if d >= 3]
    if not branching:
        return "path"
    if len(branching) == 1:
        return "star"
    return "tree"
