"""MoLESP — the paper's main algorithm (Section 4.7, Algorithms 1-5).

MoLESP combines ESP's edge-set pruning with **both** orthogonal fixes:
MoESP's seed-rooted tree injection and LESP's signature-based pruning
exception.  It therefore finds everything MoESP and LESP find, and more:

* **Property 7** — all 3-piecewise-simple results are found;
* **Property 8** — MoLESP is *complete* for m <= 3 seed sets (the most
  common CTPs in practice);
* **Property 9** — for any m, every result whose simple-tree decomposition
  (Definition 4.6) consists of ``(u, n)``-rooted merges is found.

These guarantees hold for any execution order, so MoLESP remains compatible
with arbitrary score functions steering the priority queue (requirement R2 /
Section 4.8).
"""

from __future__ import annotations

from repro.ctp.engine import GAMFamilySearch


class MoLESPSearch(GAMFamilySearch):
    """The full algorithm: ESP + Mo trees + LESP guard."""

    name = "molesp"
    edge_set_pruning = True
    mo_trees = True
    lesp_guard = True
