"""The GAM-family search engine (Algorithms 1-5 of the paper).

One engine implements GAM (Section 4.2) and its refinements as three
orthogonal switches, combined by the named algorithm classes:

====================  ===================  =========  ==========
algorithm             edge_set_pruning     mo_trees   lesp_guard
====================  ===================  =========  ==========
GAM                   no                   no         no
ESP (Sec 4.4)         yes                  no         no
MoESP (Sec 4.5)       yes                  yes        no
LESP (Sec 4.6)        yes                  no         yes
MoLESP (Sec 4.7)      yes                  yes        yes
====================  ===================  =========  ==========

Faithfulness notes (also summarized in DESIGN.md §1.3):

* **Merge2** is implemented as ``sat(t1) ∩ sat(t2) ⊆ seed_sets(root)``: two
  trees may share satisfied seed sets only when the shared root itself is
  the seed realizing them.  The strict disjointness stated in Section 4.2
  would contradict GAM's completeness (Property 1: results whose internal
  branching node is a seed require such merges) and the paper's own MoESP
  trace of Figure 3.
* **ESP** never prunes empty edge sets (Definition 4.3), so Init trees
  survive.
* **Mo trees** (Algorithm 3) are injected when a Grow/Merge strictly
  enlarges seed coverage; they bypass the history, are recorded for merging
  only, and Grow is disabled on any tree whose provenance contains Mo.
* **Seed signatures** ``ss_n`` (Section 4.6) are updated whenever a Grow
  builds an ``(n, s)``-rooted path, before the pruning decision, exactly as
  Algorithm 1 line 10 prescribes.
* The queue favours the smallest trees with FIFO tie-breaking (the paper's
  experimental order, Section 5.4); other orders are pluggable (Sec 4.8).
* Section 4.9: wildcard (``N``) seed sets contribute no Init trees and are
  satisfied by construction; unbalanced seed sets trigger per-signature
  priority queues, popping from the least-filled queue.

Performance: tree state is *interned* (:mod:`repro.ctp.interning`) — edge
sets are hash-consed handles, node sets carry exact bitmasks, merge
partners are bucketed by sat mask, and balanced pops use a lazy size heap.
Node bitmasks live in a dense per-search id space
(:mod:`repro.ctp.idremap`, ``SearchConfig(dense_ids=True)``): masks are
sized by |nodes this search touched| instead of the graph's largest node
id, which is what makes million-node (and sparse-huge-id) graphs viable;
``dense_ids=False`` restores the legacy global-id masks as the A/B
baseline of ``python -m repro.bench scale``.
Both the UNI filter and the Algorithm 4 history check run *before* a
grown/merged tree is constructed, so pruned candidates cost a few int
lookups and no allocation.  ``SearchConfig(interning=False)`` restores the
seed frozenset bookkeeping (the A/B baseline of ``python -m repro.bench
interning``); both representations produce byte-identical result sets and
counters (see ``tests/test_interning_equivalence.py``).
"""

from __future__ import annotations

import heapq
import operator
from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro._util import Counter, Deadline, full_mask, popcount
from repro.ctp.config import DEFAULT_CONFIG, WILDCARD, SearchConfig
from repro.ctp.idremap import make_remap
from repro.ctp.interning import SearchContext, adopt_pool, pool_stats_delta
from repro.ctp.results import CTPResultSet, ResultTree, materialize_seeds
from repro.ctp.stats import SearchStats
from repro.ctp.tree import (
    SearchTree,
    make_grow,
    make_init,
    make_merge,
    make_mo,
    uni_grow_state,
    uni_merge_state,
)
from repro.errors import SearchError
from repro.graph.backend import resolve_backend
from repro.graph.graph import Graph


class _StopSearch(Exception):
    """Internal: unwind the search on LIMIT / memory valve / deadline."""

    def __init__(self, timed_out: bool = False):
        self.timed_out = timed_out


#: Sort key for re-assembling merge partners from several sat buckets in
#: their global registration order.
_tree_seq = operator.attrgetter("seq")


def normalize_seed_sets(graph: Graph, seed_sets: Sequence) -> Tuple[List[Optional[Tuple[int, ...]]], List[int]]:
    """Validate seed sets; return (per-position node tuples or None, wildcard positions).

    Each non-wildcard entry is deduplicated and checked against the graph.
    """
    if len(seed_sets) < 1:
        raise SearchError("a CTP needs at least one seed set")
    normalized: List[Optional[Tuple[int, ...]]] = []
    wildcard_positions: List[int] = []
    for position, seed_set in enumerate(seed_sets):
        if seed_set is WILDCARD:
            normalized.append(None)
            wildcard_positions.append(position)
            continue
        seen: Set[int] = set()
        nodes: List[int] = []
        for node in seed_set:
            graph.node(node)  # raises GraphError on unknown ids
            if node not in seen:
                seen.add(node)
                nodes.append(node)
        normalized.append(tuple(nodes))
    if len(wildcard_positions) == len(seed_sets):
        raise SearchError("at least one seed set must be explicit (not WILDCARD)")
    return normalized, wildcard_positions


class GAMFamilySearch:
    """Base class: run one of the GAM-family algorithms on a CTP.

    Subclasses only set the three switches and a name.  Instances are
    stateless; all per-evaluation state lives in :class:`_GAMRun`.
    """

    name = "gam-family"
    edge_set_pruning = False
    mo_trees = False
    lesp_guard = False

    def run(
        self,
        graph: Graph,
        seed_sets: Sequence,
        config: Optional[SearchConfig] = None,
        context: Optional[SearchContext] = None,
    ) -> CTPResultSet:
        """Evaluate the CTP defined by ``seed_sets`` over ``graph``.

        ``seed_sets`` is a sequence of node-id collections (or ``WILDCARD``).
        Returns all minimal connecting trees found (Definition 2.8), subject
        to the filters in ``config``.  ``context`` is an optional
        query-scoped :class:`~repro.ctp.interning.SearchContext`: when given
        (and compatible with this run's graph/interning mode) the run adopts
        the context's shared edge-set pool and rooted-result cache instead
        of constructing pool state internally.

        Concurrency contract: all mutable *search* state lives in the
        per-call :class:`_GAMRun`, and the only shared structures a run
        touches are the context's pool and caches — so concurrent runs
        over one ``SearchContext(thread_safe=True)`` (the parallel
        dispatcher's setup, :mod:`repro.query.parallel`) are safe and
        produce exactly the rows a serial run would: handles are opaque
        identities, never ordered on, so interleaved handle numbering
        cannot change a search outcome.  Sharing a *non*-thread-safe
        context across threads is the caller's bug; the dispatcher
        downgrades that case to serial.
        """
        run = _GAMRun(graph, seed_sets, config or DEFAULT_CONFIG, self, context)
        return run.execute()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class _GAMRun:
    """State and main loop of a single GAM-family evaluation."""

    def __init__(
        self,
        graph: Graph,
        seed_sets: Sequence,
        config: SearchConfig,
        algo: GAMFamilySearch,
        context: Optional[SearchContext] = None,
    ):
        self.graph = graph = resolve_backend(graph, config.backend)
        self.config = config
        self.algo = algo
        self.stats = SearchStats()
        normalized, self.wildcard_positions = normalize_seed_sets(graph, seed_sets)
        self.positions = normalized  # per original position: tuple or None
        # Bit i of every sat mask corresponds to explicit_positions[i].
        self.explicit_positions: List[int] = [p for p, s in enumerate(normalized) if s is not None]
        self.explicit_sets: List[Tuple[int, ...]] = [normalized[p] for p in self.explicit_positions]
        self.full_sat = full_mask(len(self.explicit_sets))
        self.seed_mask: Dict[int, int] = {}
        for bit, nodes in enumerate(self.explicit_sets):
            for node in nodes:
                self.seed_mask[node] = self.seed_mask.get(node, 0) | (1 << bit)
        # --- interned tree state (edge-set pool, see repro.ctp.interning) ---
        # A query-scoped context supplies a pool shared by all the query's
        # CTP runs (handles stay comparable across runs); refusals — graph
        # or interning mismatch — silently fall back to a private pool.
        self.pool, self.context, self._pool_baseline = adopt_pool(
            context, graph, config.interning, config.dense_ids
        )
        # Dense per-search node identity (repro.ctp.idremap): node-mask
        # bits are compact first-touch indexes, so masks scale with the
        # frontier, not with max(node_id).  Strictly run-local state.
        self.remap = make_remap(config.dense_ids)
        # Rooted-cache fingerprint: config identity plus the graph's size
        # (append-only graphs invalidate cached payloads by growing).
        self._cfg_fp = None
        if self.context is not None:
            self._cfg_fp = (
                SearchContext.config_fingerprint(config),
                SearchContext.graph_fingerprint(graph),
            )
        # --- search state (Algorithms 1-5 globals) ---
        # History structures are keyed by pool handles: ints under the
        # interning pool (O(1) hashing), frozensets under the fallback.
        self.hist: Set = set()  # edge-set history (ESP)
        self.rooted_keys: Set[Tuple[int, object]] = set()  # rooted-tree history (GAM / LESP)
        #: Merge-partner index.  Interned mode: root -> sat mask -> trees,
        #: so a cascade step skips Merge2-incompatible partners one bucket
        #: at a time instead of testing them one tree at a time (global
        #: insertion order is restored from the per-tree ``seq`` tickets
        #: when several buckets are compatible).  Fallback mode
        #: (``interning=False``): root -> flat list, the seed's linear scan.
        self.interned = config.interning
        self.trees_rooted_in: Dict[int, object] = {}
        self._seq = 0
        self.ss: Dict[int, int] = {}  # seed signatures (Section 4.6)
        self.result_keys: Set = set()
        self.results: List[ResultTree] = []
        self.counter = Counter()
        self.deadline = Deadline(config.timeout)
        self.timed_out = False
        self.stopped = False
        # --- priority queues (single, or one per sat signature: Sec 4.9) ---
        self.balanced = self._balanced_enabled()
        self.queues: Dict[int, list] = {}
        self.total_queued = 0
        self.priority = self._priority_function()
        # Balanced mode (Section 4.9 (ii)) picks the least-filled queue per
        # pop.  Scanning every queue per pop is O(q); instead queue sizes
        # are cached and a lazy heap of (size, key) entries serves the
        # minimum in O(log q) amortized (stale entries are discarded on
        # sight — counted by stats.balanced_pop_scans).
        self._queue_sizes: Dict[int, int] = {}
        self._size_heap: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    # setup helpers
    # ------------------------------------------------------------------
    def _balanced_enabled(self) -> bool:
        mode = self.config.balanced_queues
        if mode is True or mode is False:
            return bool(mode)
        if self.wildcard_positions:
            return True
        sizes = [len(s) for s in self.explicit_sets]
        if not sizes or min(sizes) == 0:
            return False
        return max(sizes) / min(sizes) >= self.config.balance_ratio

    def _priority_function(self):
        order = self.config.order
        if order == "size":
            return lambda tree: tree.size
        if order == "score":
            score = self.config.score
            graph = self.graph
            return lambda tree: -score(graph, tree.edges, tree.nodes)
        return order  # user-supplied callable

    # ------------------------------------------------------------------
    # main loop (Algorithm 1)
    # ------------------------------------------------------------------
    def execute(self) -> CTPResultSet:
        complete = True
        try:
            self._init_trees()
            self._main_loop()
        except _StopSearch as stop:
            complete = False
            self.timed_out = stop.timed_out
        self.stats.elapsed_seconds = self.deadline.elapsed()
        pool_stats_delta(self.stats, self.pool, self._pool_baseline)
        results = self._final_results()
        return CTPResultSet(
            results=results,
            stats=self.stats,
            complete=complete,
            timed_out=self.timed_out,
            algorithm=self.algo.name,
        )

    def _init_trees(self) -> None:
        if any(not seed_set for seed_set in self.explicit_sets):
            return  # an empty seed set has no embeddings, hence no results
        uni = self.config.uni
        remap_bit = self.remap.bit
        for node, mask in self.seed_mask.items():
            tree = make_init(self.pool, node, mask, uni, node_bit=remap_bit(node))
            self.stats.init_trees += 1
            self.ss[node] = self.ss.get(node, 0) | mask
            work = self._absorb(tree, gained=True)
            if work:
                self._merge_cascade(deque(work))

    def _main_loop(self) -> None:
        deadline = self.deadline
        graph = self.graph
        seed_mask = self.seed_mask
        uni = self.config.uni
        pool = self.pool
        stats = self.stats
        ss = self.ss
        remap_bit = self.remap.bit
        while self.total_queued:
            if deadline.expired():
                raise _StopSearch(timed_out=True)
            entry = self._pop()
            _, _, tree, edge_id, other, outgoing = entry
            stats.grows += 1
            # The UNI filter and the history check both precede tree
            # construction: a rejected Grow costs a couple of int lookups,
            # no frozenset and no SearchTree (the interning layer's point).
            uni_state = None
            if uni:
                uni_state = uni_grow_state(tree, other, outgoing)
                if uni_state is None:
                    stats.pruned_filters += 1
                    continue
            # Algorithm 1 line 10: update the seed signature of the new root
            # before any pruning decision.  The grown tree is an (n, s)-
            # rooted path iff the source tree was one and ``other`` is not
            # itself a seed (Definition 4.4).
            path_seed = tree.path_seed if other not in seed_mask else None
            if path_seed is not None:
                ss[other] = ss.get(other, 0) | seed_mask[path_seed]
            eset = pool.union1(tree.eset, edge_id)
            if not self._is_new_rooted(other, eset):
                stats.pruned_history += 1
                continue
            grown = make_grow(
                tree,
                edge_id,
                other,
                seed_mask.get(other, 0),
                other in seed_mask,
                graph.edge_weight(edge_id),
                outgoing,
                uni,
                eset=eset,
                uni_state=uni_state,
                node_bit=remap_bit(other),
            )
            work = self._absorb(grown, gained=grown.sat != tree.sat)
            if work:
                self._merge_cascade(deque(work))

    # ------------------------------------------------------------------
    # queue management (single or balanced, Section 4.9 (ii))
    # ------------------------------------------------------------------
    def _queue_key(self, tree: SearchTree) -> int:
        return tree.sat if self.balanced else 0

    def _push_grows(self, tree: SearchTree) -> None:
        """Queue every legal Grow opportunity of ``tree`` (Algorithm 2 l.9-13)."""
        config = self.config
        labels = config.labels
        max_edges = config.max_edges
        if max_edges is not None and tree.size + 1 > max_edges:
            return
        graph = self.graph
        seed_mask = self.seed_mask
        nodes = tree.nodes
        sat = tree.sat
        key = self._queue_key(tree)
        queue = self.queues.setdefault(key, [])
        priority = self.priority(tree)
        pushed = 0
        for edge_id, other, outgoing in graph.adjacent_filtered(tree.root, labels):
            if other in nodes:  # Grow1
                continue
            if seed_mask.get(other, 0) & sat:  # Grow2
                continue
            heapq.heappush(queue, (priority, self.counter.next(), tree, edge_id, other, outgoing))
            pushed += 1
        if pushed:
            self.total_queued += pushed
            self.stats.queue_pushes += pushed
            if self.balanced and self.interned:
                size = self._queue_sizes.get(key, 0) + pushed
                self._queue_sizes[key] = size
                heapq.heappush(self._size_heap, (size, key))

    def _pop(self):
        if not self.balanced:
            queue = self.queues[0]
        elif self.interned:
            # Grow from the least-filled non-empty queue (Section 4.9).
            # The lazy size heap serves min-by-(size, key); entries whose
            # recorded size is stale are discarded on sight.
            size_heap = self._size_heap
            sizes = self._queue_sizes
            scans = 0
            while True:
                scans += 1
                size, key = size_heap[0]
                if sizes[key] == size:
                    break
                heapq.heappop(size_heap)
            self.stats.balanced_pop_scans += scans
            heapq.heappop(size_heap)  # consume the entry we matched
            sizes[key] = size - 1
            if size > 1:
                heapq.heappush(size_heap, (size - 1, key))
            queue = self.queues[key]
        else:
            # Seed bookkeeping: re-scan every queue on every pop.
            key = min(
                (k for k, q in self.queues.items() if q),
                key=lambda k: (len(self.queues[k]), k),
            )
            self.stats.balanced_pop_scans += len(self.queues)
            queue = self.queues[key]
        self.total_queued -= 1
        return heapq.heappop(queue)

    # ------------------------------------------------------------------
    # pruning (Algorithm 4: isNew)
    # ------------------------------------------------------------------
    def _is_new(self, tree: SearchTree) -> bool:
        return self._is_new_rooted(tree.root, tree.eset)

    def _is_new_rooted(self, root: int, eset) -> bool:
        """Algorithm 4 on the *identity* of a rooted tree.

        Takes the (root, edge-set handle) pair rather than a built tree so
        the engine can prune before constructing anything.
        """
        if not eset:
            # ESP never discards an empty edge set (Definition 4.3).
            return (root, eset) not in self.rooted_keys
        if not self.algo.edge_set_pruning:
            return (root, eset) not in self.rooted_keys
        if eset not in self.hist:
            return True
        if self.algo.lesp_guard:
            signature = self.ss.get(root, 0)
            if (
                popcount(signature) >= 3
                and self.graph.degree(root) >= 3
                and (root, eset) not in self.rooted_keys
            ):
                return True
        return False

    # ------------------------------------------------------------------
    # tree registration (Algorithm 2: processTree / Algorithm 3)
    # ------------------------------------------------------------------
    def _absorb(self, tree: SearchTree, gained: bool) -> List[SearchTree]:
        """Register a tree that passed ``_is_new``; return merge-cascade work.

        Results are reported and not recorded for merging (Algorithm 2);
        other trees are indexed in ``TreesRootedIn``, get their Mo copies
        when they gained seed coverage (Section 4.5), and have their Grow
        opportunities queued unless their provenance contains Mo.
        """
        if self.algo.edge_set_pruning:
            self.hist.add(tree.eset)
        self.rooted_keys.add(tree.rooted_key())
        self.stats.trees_kept += 1
        if self.config.max_trees is not None and self.stats.trees_kept > self.config.max_trees:
            raise _StopSearch()
        if tree.sat == self.full_sat:
            self._record_result(tree)
            if not self.wildcard_positions:
                return []
            # Section 4.9 (i): with an N seed set, any encountered node is a
            # valid match, so a covering tree is a result *and* every
            # extension of it yields further results — keep exploring.
        work = [tree]
        if tree.eset:
            self._index_partner(tree)
            if self.algo.mo_trees and (gained or self.config.mo_inject_always):
                work.extend(self._inject_mo_copies(tree))
        if not tree.mo_tainted:
            self._push_grows(tree)
        return work

    def _index_partner(self, tree: SearchTree) -> None:
        """File ``tree`` in the root -> sat bucket index with a seq ticket."""
        if not self.interned:  # seed layout: flat list per root
            self.trees_rooted_in.setdefault(tree.root, []).append(tree)
            return
        tree.seq = self._seq
        self._seq += 1
        buckets = self.trees_rooted_in.get(tree.root)
        if buckets is None:
            buckets = self.trees_rooted_in[tree.root] = {}
        bucket = buckets.get(tree.sat)
        if bucket is None:
            buckets[tree.sat] = [tree]
        else:
            bucket.append(tree)

    def _inject_mo_copies(self, tree: SearchTree) -> List[SearchTree]:
        """Algorithm 3 lines 2-5: re-root the tree at each contained seed."""
        copies = []
        seed_mask = self.seed_mask
        uni = self.config.uni
        edges = tree.edges if uni else ()  # materialized once, interned
        edge_target = self.graph.edge_target
        for node in tree.nodes:
            if node == tree.root or node not in seed_mask:
                continue
            key = (node, tree.eset)
            if key in self.rooted_keys:
                continue  # an identical rooted tree already exists
            in_deg = 0
            if uni:
                # In-degree of the seed inside the tree, read off the
                # backend's flat endpoint columns (no Edge objects).
                in_deg = sum(1 for e in edges if edge_target(e) == node)
            copy = make_mo(tree, node, in_deg)
            self.stats.mo_copies += 1
            self.rooted_keys.add(key)
            self._index_partner(copy)
            copies.append(copy)
        return copies

    # ------------------------------------------------------------------
    # aggressive merging (Algorithm 5: MergeAll)
    # ------------------------------------------------------------------
    def _merge_cascade(self, work: deque) -> None:
        config = self.config
        uni = config.uni
        max_edges = config.max_edges
        seed_mask = self.seed_mask
        stats = self.stats
        interned = self.interned
        pool = self.pool
        while work:
            if self.deadline.expired():
                raise _StopSearch(timed_out=True)
            t1 = work.popleft()
            if not t1.eset:  # merging with a one-node tree is a no-op
                continue
            index = self.trees_rooted_in.get(t1.root)
            if not index:
                continue
            root_mask = 0 if config.strict_merge2 else seed_mask.get(t1.root, 0)
            sat = t1.sat
            if interned:
                # Merge2 (relaxed, see module docstring): overlapping seed
                # sets are only allowed through the shared root (under
                # strict_merge2, any overlap blocks).  The condition depends
                # only on the partner's sat mask, so whole buckets are
                # skipped at once.
                if len(index) == 1:
                    # Single-sat root (the common case on sparse graphs):
                    # one compatibility test, no bucket assembly at all.
                    bucket_sat, bucket = next(iter(index.items()))
                    if (sat & bucket_sat) & ~root_mask:
                        stats.merge_buckets_skipped += 1
                        continue
                    partners = bucket
                else:
                    compat = [
                        bucket
                        for bucket_sat, bucket in index.items()
                        if not (sat & bucket_sat) & ~root_mask
                    ]
                    stats.merge_buckets_skipped += len(index) - len(compat)
                    if not compat:
                        continue
                    if len(compat) == 1:
                        # One compatible bucket: iterate it in place, bounded
                        # by its current length — absorbed merges may append
                        # behind us, exactly as they fell outside the seed's
                        # snapshot copy.
                        partners = compat[0]
                    else:
                        # Several compatible buckets: concatenate and restore
                        # the global insertion order the seed iterated in
                        # (near-sorted runs, timsort merges them in ~linear
                        # time).
                        partners = [tree for bucket in compat for tree in bucket]
                        partners.sort(key=_tree_seq)
            else:
                partners = list(index)  # the seed's snapshot copy
            length = len(partners)
            node_mask = t1.node_mask
            root = t1.root
            # The root is always already in the remap (it entered as an
            # Init seed or a Grow frontier node), so this is a dict hit.
            root_bit = self.remap.bit(root)
            t1_eset = t1.eset
            t1_size = t1.size
            for i in range(length):
                tp = partners[i]
                if tp is t1:
                    continue
                stats.merges_attempted += 1
                if interned:
                    # Merge1: the trees share exactly the root.  Exact
                    # bitmask test — nothing materialized for rejections.
                    if node_mask & tp.node_mask != root_bit:
                        continue
                else:
                    # Seed bookkeeping: per-partner Merge2, then Merge1 by
                    # node-set intersection.
                    if (sat & tp.sat) & ~root_mask:
                        continue
                    if len(t1.nodes & tp.nodes) != 1:
                        continue
                if max_edges is not None and t1_size + tp.size > max_edges:
                    continue
                # UNI filter and history check both precede construction —
                # a pruned merge never materializes a set or a SearchTree.
                uni_state = None
                if uni:
                    uni_state = uni_merge_state(t1, tp)
                    if uni_state is None:
                        stats.pruned_filters += 1
                        continue
                eset = pool.union2(t1_eset, tp.eset)
                if not self._is_new_rooted(root, eset):
                    stats.pruned_history += 1
                    continue
                merged = make_merge(t1, tp, uni, eset=eset, uni_state=uni_state)
                stats.merges += 1
                gained = merged.sat != t1.sat and merged.sat != tp.sat
                work.extend(self._absorb(merged, gained))

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def _record_result(self, tree: SearchTree) -> None:
        if self.config.mo_inject_always and not self._is_minimal(tree):
            # Algorithm 3 read literally (the mo_inject_always ablation)
            # re-roots trees whose old root is a non-seed leaf; merges of
            # those can cover all seed sets without being minimal.  Under
            # the Section 4.5 gain condition this cannot happen, so the
            # check lives only on this ablation path.
            self.stats.pruned_filters += 1
            return
        if tree.eset in self.result_keys:
            self.stats.duplicate_results += 1
            return
        self.result_keys.add(tree.eset)
        seeds = materialize_seeds(
            len(self.positions),
            self.explicit_positions,
            self.seed_mask,
            tree.nodes,
            tree.sat,
            wildcard_positions=self.wildcard_positions,
            root=tree.root,  # the N match: the only possibly-non-seed leaf
        )
        # The per-root result cache of the query context: a sibling CTP (or
        # an earlier run of this one) that reported the same rooted tree
        # under the same config fingerprint already materialized edge/node
        # sets and paid the score call — reuse its payload.  Seeds are
        # per-CTP (positions differ) and always rebuilt above.
        context = self.context
        cached = None
        cache_key = None
        if context is not None:
            cache_key = (tree.root, tree.eset, self._cfg_fp)
            cached = context.rooted_cache.get(cache_key)
        if cached is not None:
            edges, nodes, score = cached
            self.stats.ctx_rooted_hits += 1
        else:
            edges, nodes = tree.edges, tree.nodes
            score = None
            if self.config.score is not None:
                score = self.config.score(self.graph, edges, nodes)
            if cache_key is not None:
                context.rooted_cache.put(cache_key, (edges, nodes, score))
        self.results.append(ResultTree(edges=edges, nodes=nodes, seeds=seeds, weight=tree.weight, score=score))
        self.stats.results_found += 1
        if self.config.limit is not None and self.stats.results_found >= self.config.limit:
            raise _StopSearch()

    def _is_minimal(self, tree: SearchTree) -> bool:
        """Every leaf is a seed (wildcard trees may keep the root free)."""
        if not tree.eset:
            return True
        degrees: Dict[int, int] = {}
        edge_endpoints = self.graph.edge_endpoints
        for edge_id in tree.edges:
            source, target = edge_endpoints(edge_id)
            degrees[source] = degrees.get(source, 0) + 1
            degrees[target] = degrees.get(target, 0) + 1
        allowed_free = 1 if self.wildcard_positions else 0
        free = 0
        for node, degree in degrees.items():
            if degree == 1 and node not in self.seed_mask:
                free += 1
                if free > allowed_free:
                    return False
        return True

    def _final_results(self) -> List[ResultTree]:
        results = self.results
        if self.config.top_k is not None and len(results) > self.config.top_k:
            results = sorted(results, key=lambda r: (-(r.score or 0.0), r.size))[: self.config.top_k]
        return results
