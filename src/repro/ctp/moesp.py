"""MoESP — Merge-oriented ESP (Section 4.5).

Whenever a Grow or Merge produces a tree with strictly more seeds than its
children, MoESP *injects* copies of that tree re-rooted at each seed node it
contains (``Mo`` provenances).  Mo trees can Merge but never Grow, and Grow
is disabled on any tree whose provenance includes a Mo step.

Guarantees (verified in tests):

* **Property 4** — every 2-piecewise-simple result (Definition 4.7) is
  found, for any number of seed sets and any execution order.
* **Property 5** — in particular, every *path* result is found.

MoESP can still miss results containing a 3-simple (or larger) edge set,
e.g. the star of Figure 5 — that is LESP's job.
"""

from __future__ import annotations

from repro.ctp.engine import GAMFamilySearch


class MoESPSearch(GAMFamilySearch):
    """ESP + seed-rooted tree injection; finds all 2ps results."""

    name = "moesp"
    edge_set_pruning = True
    mo_trees = True
    lesp_guard = False
