"""CTP results (Definition 2.8) and their validation.

A set-based CTP result is a tuple ``(s1, ..., sm, t)``: one seed per seed
set plus the minimal connecting subtree.  The root a search algorithm
happened to use is *not* part of the result (Section 4.4), so results are
identified — and deduplicated — by their edge set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.ctp.stats import SearchStats
from repro.graph.graph import Graph


@dataclass(frozen=True)
class ResultTree:
    """One CTP result: the connecting tree plus its per-set seeds.

    ``seeds[i]`` is the node matched for seed set ``i`` (``None`` for a
    wildcard set, whose match is any tree node — Section 4.9).  ``score`` is
    filled when the search ran with a ``SCORE`` filter.
    """

    edges: FrozenSet[int]
    nodes: FrozenSet[int]
    seeds: Tuple[Optional[int], ...]
    weight: float = 0.0
    score: Optional[float] = None

    @property
    def size(self) -> int:
        return len(self.edges)

    def describe(self, graph: Graph) -> str:
        seed_labels = ", ".join("*" if s is None else (graph.node(s).label or str(s)) for s in self.seeds)
        return f"[{seed_labels}] {graph.describe_tree(self.edges)}"


@dataclass
class CTPResultSet:
    """All results of one CTP evaluation, with provenance statistics.

    ``complete`` is ``True`` when the search space was exhausted — i.e. no
    timeout, LIMIT, or memory valve cut the exploration short.  Note that
    an exhausted search by an *incomplete algorithm* (e.g. ESP) still sets
    ``complete=True``: the flag describes the run, not the guarantee.
    """

    results: List[ResultTree]
    stats: SearchStats
    complete: bool
    timed_out: bool = False
    algorithm: str = ""

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def edge_sets(self) -> FrozenSet[FrozenSet[int]]:
        """The results as a set of edge sets (order-independent identity)."""
        return frozenset(result.edges for result in self.results)

    def best(self) -> Optional[ResultTree]:
        """Highest-scored result (falls back to smallest when unscored)."""
        if not self.results:
            return None
        if all(result.score is not None for result in self.results):
            return max(self.results, key=lambda r: r.score)
        return min(self.results, key=lambda r: r.size)

    def sorted_by_score(self) -> List[ResultTree]:
        return sorted(self.results, key=lambda r: (-(r.score or 0.0), r.size))


def materialize_seeds(
    num_positions: int,
    explicit_positions: Sequence[int],
    seed_mask: Dict[int, int],
    nodes: FrozenSet[int],
    sat: int,
    wildcard_positions: Sequence[int] = (),
    root: Optional[int] = None,
) -> Tuple[Optional[int], ...]:
    """The per-position seed tuple of a covering tree (Definition 2.8).

    Shared by the GAM-family and BFT reporters: walks the tree's (global-id)
    node set and assigns, for every sat bit the tree realizes, the matching
    node to that seed set's original query position.  Wildcard positions are
    bound to ``root`` — the tree's only possibly-non-seed leaf (Section
    4.9).  Deliberately iterates ``nodes`` in its native order so dense-id
    and legacy runs (which share the identical frozenset) produce
    bit-identical seed tuples.
    """
    seeds: List[Optional[int]] = [None] * num_positions
    for position in wildcard_positions:
        seeds[position] = root
    num_bits = len(explicit_positions)
    for node in nodes:
        mask = seed_mask.get(node, 0) & sat
        if mask:
            for bit in range(num_bits):
                if mask & (1 << bit):
                    seeds[explicit_positions[bit]] = node
    return tuple(seeds)


def tree_leaves(graph: Graph, edges: FrozenSet[int]) -> List[int]:
    """Nodes adjacent to exactly one edge of ``edges`` (Observation 1)."""
    edge_endpoints = graph.edge_endpoints
    degree: Dict[int, int] = {}
    for edge_id in edges:
        source, target = edge_endpoints(edge_id)
        degree[source] = degree.get(source, 0) + 1
        degree[target] = degree.get(target, 0) + 1
    return [node for node, d in degree.items() if d == 1]


def is_tree(graph: Graph, edges: FrozenSet[int]) -> bool:
    """True when ``edges`` form a connected acyclic subgraph."""
    if not edges:
        return True
    edge_endpoints = graph.edge_endpoints
    nodes = set()
    for edge_id in edges:
        source, target = edge_endpoints(edge_id)
        nodes.add(source)
        nodes.add(target)
    if len(nodes) != len(edges) + 1:
        return False
    # connectivity by union-find
    parent = {node: node for node in nodes}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    components = len(nodes)
    for edge_id in edges:
        source, target = edge_endpoints(edge_id)
        ra, rb = find(source), find(target)
        if ra == rb:
            return False
        parent[ra] = rb
        components -= 1
    return components == 1


def validate_result(
    graph: Graph,
    result: ResultTree,
    seed_sets: Sequence[Sequence[int]],
    wildcard_positions: Sequence[int] = (),
) -> List[str]:
    """Check a result against Definition 2.8; return a list of violations.

    Verifies: the edge set is a tree; it contains exactly one node per
    (non-wildcard) seed set; every leaf is a seed (minimality — Observation
    1); and the recorded per-set seeds are consistent.
    An empty list means the result is valid.
    """
    problems: List[str] = []
    if not is_tree(graph, result.edges):
        problems.append("edge set is not a tree")
        return problems
    wildcard = set(wildcard_positions)
    seed_membership: Dict[int, List[int]] = {}
    for index, seed_set in enumerate(seed_sets):
        if index in wildcard:
            continue
        for node in seed_set:
            seed_membership.setdefault(node, []).append(index)
    all_seed_nodes = set(seed_membership)
    for index, seed_set in enumerate(seed_sets):
        if index in wildcard:
            continue
        matched = result.nodes & set(seed_set)
        if len(matched) != 1:
            problems.append(f"seed set {index}: expected exactly 1 node in tree, found {len(matched)}")
        elif result.seeds[index] not in matched:
            problems.append(f"seed set {index}: recorded seed {result.seeds[index]} not the matched node")
    if result.edges:
        non_seed_leaves = [leaf for leaf in tree_leaves(graph, result.edges) if leaf not in all_seed_nodes]
        # With wildcard (N) seed sets, each non-seed leaf may serve as the
        # bound match of one wildcard set (Section 4.9); otherwise every
        # leaf must be a seed (Observation 1).
        if len(non_seed_leaves) > len(wildcard):
            for leaf in non_seed_leaves[len(wildcard):]:
                problems.append(f"non-seed leaf {leaf}: tree is not minimal")
    return problems
