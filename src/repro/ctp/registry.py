"""Algorithm registry and the :func:`evaluate_ctp` convenience entry point."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Type

from repro.ctp.bft import BFTAMSearch, BFTMSearch, BFTSearch
from repro.ctp.config import SearchConfig
from repro.ctp.interning import SearchContext
from repro.ctp.esp import ESPSearch
from repro.ctp.gam import GAMSearch
from repro.ctp.lesp import LESPSearch
from repro.ctp.moesp import MoESPSearch
from repro.ctp.molesp import MoLESPSearch
from repro.ctp.results import CTPResultSet
from repro.errors import SearchError
from repro.graph.graph import Graph

#: Every CTP evaluation algorithm studied in the paper, by name.
ALGORITHMS: Dict[str, Type] = {
    "bft": BFTSearch,
    "bft-m": BFTMSearch,
    "bft-am": BFTAMSearch,
    "gam": GAMSearch,
    "esp": ESPSearch,
    "moesp": MoESPSearch,
    "lesp": LESPSearch,
    "molesp": MoLESPSearch,
}

#: Algorithms that are complete for any number of seed sets.
COMPLETE_ALGORITHMS = ("bft", "bft-m", "bft-am", "gam")


def get_algorithm(name: str):
    """Instantiate a CTP algorithm by its paper name (e.g. ``"molesp"``)."""
    try:
        return ALGORITHMS[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise SearchError(f"unknown CTP algorithm {name!r}; known: {known}") from None


def evaluate_ctp(
    graph: Graph,
    seed_sets: Sequence,
    algorithm: str = "molesp",
    config: Optional[SearchConfig] = None,
    context: Optional[SearchContext] = None,
    **config_kwargs,
) -> CTPResultSet:
    """Evaluate a set-based CTP (Definition 2.8) with the named algorithm.

    ``config_kwargs`` are forwarded to :class:`SearchConfig` when no
    explicit ``config`` is given, e.g.::

        evaluate_ctp(g, [s1, s2, s3], "molesp", timeout=5.0, max_edges=8)

    ``context`` optionally shares a query-scoped
    :class:`~repro.ctp.interning.SearchContext` (edge-set pool + result
    caches) across several evaluations over the same graph.
    """
    if config is not None and config_kwargs:
        raise SearchError("pass either a SearchConfig or keyword options, not both")
    if config is None:
        config = SearchConfig(**config_kwargs)
    return get_algorithm(algorithm).run(graph, seed_sets, config, context=context)
