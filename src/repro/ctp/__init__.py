"""Connecting Tree Pattern (CTP) evaluation — Section 4 of the paper.

This package implements the full algorithm family studied by the paper:

================  ==========================================================
``bft``           breadth-first tree search (Section 4.1)
``bft-m``         BFT + one-level Merge (Section 4.3)
``bft-am``        BFT + aggressive Merge (Section 4.3)
``gam``           Grow and Aggressive Merge (Section 4.2, after [6])
``esp``           GAM + Edge Set Pruning (Section 4.4) — incomplete
``moesp``         Merge-oriented ESP (Section 4.5) — finds all 2ps results
``lesp``          Limited ESP (Section 4.6) — spares rooted merges
``molesp``        MoESP + LESP combined (Section 4.7) — complete for m <= 3
================  ==========================================================

Entry points: :func:`evaluate_ctp` (by algorithm name) or the algorithm
classes themselves.  ``WILDCARD`` stands for a seed set equal to all graph
nodes (the ``N`` seed sets of Section 4.9).
"""

from repro.ctp.analysis import (
    classify_piece,
    is_p_piecewise_simple,
    molesp_guaranteed,
    result_shape,
    simple_tree_decomposition,
)
from repro.ctp.config import WILDCARD, SearchConfig
from repro.ctp.interning import EdgeSetPool, FrozenEdgeSets, ResultCache, SearchContext
from repro.ctp.results import CTPResultSet, ResultTree, validate_result
from repro.ctp.stats import SearchStats
from repro.ctp.registry import ALGORITHMS, evaluate_ctp, get_algorithm
from repro.ctp.bft import BFTSearch
from repro.ctp.gam import GAMSearch
from repro.ctp.esp import ESPSearch
from repro.ctp.moesp import MoESPSearch
from repro.ctp.lesp import LESPSearch
from repro.ctp.molesp import MoLESPSearch

__all__ = [
    "ALGORITHMS",
    "BFTSearch",
    "CTPResultSet",
    "EdgeSetPool",
    "ESPSearch",
    "FrozenEdgeSets",
    "GAMSearch",
    "LESPSearch",
    "MoESPSearch",
    "MoLESPSearch",
    "ResultCache",
    "ResultTree",
    "SearchConfig",
    "SearchContext",
    "SearchStats",
    "WILDCARD",
    "classify_piece",
    "evaluate_ctp",
    "get_algorithm",
    "is_p_piecewise_simple",
    "molesp_guaranteed",
    "result_shape",
    "simple_tree_decomposition",
    "validate_result",
]
