"""Search statistics.

Figure 11 of the paper plots the *number of provenances* each algorithm
builds next to its runtime — "the algorithm running times closely track the
numbers of built provenances".  :class:`SearchStats` counts every event the
engines generate so the benchmark harness can regenerate those plots and so
tests can assert pruning behaviour precisely.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Iterable


@dataclass
class SearchStats:
    """Counters accumulated during one CTP evaluation."""

    init_trees: int = 0
    grows: int = 0
    merges_attempted: int = 0
    merges: int = 0
    mo_copies: int = 0
    pruned_history: int = 0
    pruned_filters: int = 0
    trees_kept: int = 0
    queue_pushes: int = 0
    results_found: int = 0
    duplicate_results: int = 0
    #: Whole sat buckets of merge partners skipped per Merge2 (the indexed
    #: TreesRootedIn of the interning layer); each skip avoids scanning
    #: every tree in the bucket.
    merge_buckets_skipped: int = 0
    #: Queue-size probes made by balanced-queue pops (Section 4.9 (ii)):
    #: lazy size-heap entries examined under interning, full per-pop queue
    #: scans under the ``interning=False`` fallback.
    balanced_pop_scans: int = 0
    #: Edge-set pool telemetry (repro.ctp.interning): distinct sets interned
    #: and memoized-union hit/miss counts.  All zero under interning=False.
    #: When the run adopted a query-scoped SearchContext these are *deltas*
    #: against the shared pool's state at run start.
    pool_sets: int = 0
    pool_union_hits: int = 0
    pool_union_misses: int = 0
    #: Results whose materialized payload (edge/node sets, score) was served
    #: by the query context's per-root cache instead of rebuilt — nonzero
    #: only when a shared SearchContext was adopted.
    ctx_rooted_hits: int = 0
    elapsed_seconds: float = 0.0

    @property
    def provenances(self) -> int:
        """Total provenances built and retained (Figure 11 d-f metric)."""
        return self.trees_kept + self.mo_copies

    def merge(self, other: "SearchStats") -> "SearchStats":
        """Fold another run's counters into this one (in place); returns self.

        Every field sums — including ``elapsed_seconds``, which therefore
        reads as *aggregate search time* across the merged runs (under
        parallel dispatch that exceeds the wall-clock of the batch; the
        wall-clock lives in the caller's timings).  The merge is driven by
        *this* class's field introspection with a zero default for fields
        ``other`` lacks: an instance unpickled from an older worker (or a
        checkpoint that predates a counter) merges cleanly instead of
        silently dropping — or crashing on — the newer counters.
        """
        for spec in fields(self):
            setattr(self, spec.name, getattr(self, spec.name) + getattr(other, spec.name, 0))
        return self

    @classmethod
    def merged(cls, runs: Iterable["SearchStats"]) -> "SearchStats":
        """Aggregate several runs' counters into a fresh ``SearchStats``.

        Integer counters are order-independent; ``elapsed_seconds`` is a
        float sum, so callers that need bit-stable aggregates must pass
        ``runs`` in a fixed order — the parallel dispatcher merges in CTP
        order, never completion order, exactly so the aggregate is
        identical regardless of worker count or scheduling.
        """
        out = cls()
        for stats in runs:
            out.merge(stats)
        return out

    def as_dict(self) -> Dict[str, float]:
        """Every declared counter plus the derived ``provenances``.

        Field-introspected (not a hand-maintained literal) so a counter
        added to the dataclass can never be silently absent from reports,
        checkpoints, or bench JSON.
        """
        out: Dict[str, float] = {spec.name: getattr(self, spec.name) for spec in fields(self)}
        out["provenances"] = self.provenances
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "SearchStats":
        """Rebuild from :meth:`as_dict` output, tolerantly in both directions.

        Unknown keys (derived values like ``provenances``, or counters
        from a *newer* writer) are ignored; missing keys (a dict from an
        *older* writer) keep their dataclass defaults — so round-tripping
        never drops known counters and never crashes on vintage data.
        """
        known = {spec.name for spec in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})

    def format(self) -> str:
        return (
            f"provenances={self.provenances} (kept={self.trees_kept}, mo={self.mo_copies}) "
            f"grows={self.grows} merges={self.merges}/{self.merges_attempted} "
            f"pruned={self.pruned_history} results={self.results_found} "
            f"elapsed={self.elapsed_seconds * 1000.0:.1f}ms"
        )
