"""ESP — GAM with Edge Set Pruning (Section 4.4).

ESP discards any provenance over a non-empty edge set for which another
provenance (possibly differently rooted) was already built.  This removes
the dominant source of repeated work in GAM and speeds it up considerably
(Figure 11), at the price of completeness: depending on the execution
order, the surviving provenance for an edge set may be rooted in a node
from which the search cannot continue toward a result (Figure 3).

Guarantee kept (Property 3): with **two** seed sets, every result is still
found, whatever the execution order — path results are built either by
Grow chains from one seed or by the first Merge at an internal meeting
node, and the first provenance of an edge set is never pruned.
"""

from __future__ import annotations

from repro.ctp.engine import GAMFamilySearch


class ESPSearch(GAMFamilySearch):
    """GAM + edge-set pruning; complete for m <= 2 only."""

    name = "esp"
    edge_set_pruning = True
    mo_trees = False
    lesp_guard = False
