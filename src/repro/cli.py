"""Command-line interface: run EQL queries on graph files.

Examples::

    python -m repro demo
    python -m repro info  --graph data.tsv
    python -m repro query --graph data.tsv "SELECT ?w WHERE { CONNECT(\"A\", \"B\") AS ?w }"
    python -m repro snapshot --graph data.tsv --out data.snapshot
    python -m repro query --snapshot data.snapshot --parallelism 4 --parallelism-mode process "..."
    python -m repro bench fig11 --scale 0.5
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.bench.cli import main as bench_main
from repro.ctp.config import PARALLELISM_MODES, SearchConfig
from repro.ctp.stats import SearchStats
from repro.errors import ReproError
from repro.graph.datasets import figure1
from repro.graph.io import load_graph_json, load_graph_tsv
from repro.graph.snapshot import load_snapshot, save_snapshot
from repro.graph.stats import graph_stats
from repro.query.evaluator import evaluate_query


def _load_graph(path: str):
    if path.endswith(".json"):
        return load_graph_json(path)
    return load_graph_tsv(path)


def _resolve_graph(args: argparse.Namespace):
    """The graph a command should run on: --snapshot, --graph, or Figure 1."""
    snapshot = getattr(args, "snapshot", None)
    if snapshot is not None:
        if args.graph is not None:
            raise ReproError("pass either --graph or --snapshot, not both")
        return load_snapshot(snapshot)
    return figure1() if args.graph is None else _load_graph(args.graph)


def _cmd_query(args: argparse.Namespace) -> int:
    graph = _resolve_graph(args)
    try:
        base_config = SearchConfig(
            backend=args.backend,
            interning=not args.no_interning,
            dense_ids=not args.no_dense_ids,
            shared_context=args.shared_context,
            parallelism=args.parallelism,
            parallelism_mode=args.parallelism_mode,
            scheduling=args.scheduling,
        )
    except ValueError as error:  # bad flag combinations are user errors
        raise ReproError(str(error)) from None
    result = evaluate_query(
        graph,
        args.query,
        algorithm=args.algorithm,
        base_config=base_config,
        default_timeout=args.timeout,
    )
    print(result.format(limit=args.rows))
    timings = result.timings
    print(
        f"\n{len(result)} row(s) | BGP {timings.bgp_seconds * 1000:.1f}ms, "
        f"CTP {timings.ctp_seconds * 1000:.1f}ms, join {timings.join_seconds * 1000:.1f}ms"
    )
    for report in result.ctp_reports:
        memo = " [ctp-cache hit]" if report.cache_hit else ""
        # Surface the dispatch that actually ran (process dispatch can
        # degrade to thread/serial for unpicklable jobs).
        mode = f" [{report.dispatch_mode}]" if args.parallelism > 1 else ""
        print(f"?{report.tree_var}:{mode} {report.result_set.stats.format()}{memo}")
    if args.parallelism > 1 and len(result.ctp_reports) > 1:
        merged = SearchStats.merged(r.result_set.stats for r in result.ctp_reports)
        print(f"all CTPs x{args.parallelism} workers (merged in CTP order): {merged.format()}")
    if result.context_stats:
        ctx = result.context_stats
        print(
            f"context: runs={ctx['runs']} pool_sets={ctx['pool_sets']} "
            f"union_hits={ctx['pool_union_hits']} "
            f"ctp_cache={ctx['ctp_cache_hits']}/{ctx['ctp_cache_hits'] + ctx['ctp_cache_misses']} "
            f"rooted_hits={ctx['rooted_cache_hits']} seed_cache_hits={ctx['seed_cache_hits']}"
        )
    if result.schedule is not None:
        sched = result.schedule
        print(
            f"schedule: mode {sched.mode_requested}->{sched.mode_selected} "
            f"estimates={[round(e, 1) for e in sched.estimates]} "
            f"order={sched.submit_order} rebalances={sched.rebalances} "
            f"(+{sched.rebalanced_seconds:.3f}s) overlaps={sched.pipeline_overlaps}"
        )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    graph = _resolve_graph(args)
    print(graph)
    print(graph_stats(graph).format())
    labels = sorted(graph.edge_labels())
    print(f"edge labels ({len(labels)}): {', '.join(labels[:20])}{'...' if len(labels) > 20 else ''}")
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    graph = figure1() if args.graph is None else _load_graph(args.graph)
    path = save_snapshot(graph, args.out)
    print(
        f"wrote {path} ({os.path.getsize(path)} bytes): "
        f"{graph.num_nodes} nodes, {graph.num_edges} edges"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run queries through a long-lived :class:`~repro.serve.QueryServer`.

    A CLI stand-in for a transport layer: starts one server (persistent
    worker pool + shared context), prewarms it, then drives the given
    queries from ``--clients`` concurrent client threads, ``--repeat``
    rounds each — the serving shape (many queries, one graph) rather than
    the one-shot ``query`` subcommand.  Prints one line per response and
    the server's counters at the end.

    SIGINT/SIGTERM shut down gracefully: the server drains — in-flight
    requests run to completion, new ones are rejected with a typed
    response — then the pool closes (releasing its workers and the
    auto-snapshot temp file) before the process exits.  A second signal
    during the drain is ignored rather than tearing down mid-request.
    """
    import signal
    import threading
    from concurrent.futures import ThreadPoolExecutor

    from repro.serve import QueryRequest, QueryServer

    graph = _resolve_graph(args)
    try:
        base_config = SearchConfig(
            interning=not args.no_interning,
            dense_ids=not args.no_dense_ids,
            parallelism=max(args.workers, 1),
            parallelism_mode="process",
            scheduling=args.scheduling,
        )
    except ValueError as error:
        raise ReproError(str(error)) from None
    requests = [
        QueryRequest(
            query=text,
            deadline=args.deadline,
            limit=args.rows,
            tag=f"q{index}.r{round_}.c{client}",
        )
        for round_ in range(args.repeat)
        for index, text in enumerate(args.queries)
        for client in range(args.clients)
    ]
    failures = 0
    with QueryServer(
        graph,
        algorithm=args.algorithm,
        base_config=base_config,
        workers=args.workers,
        max_pending=args.max_pending,
        default_timeout=args.timeout,
        compaction_threshold=(
            None if args.compaction_threshold < 0 else args.compaction_threshold
        ),
    ) as server:
        # Graceful shutdown: the first SIGINT/SIGTERM starts a drain on a
        # helper thread (a handler must not block the main thread, which
        # is collecting responses) — in-flight requests finish, new ones
        # get typed rejections, then the pool closes.  Handlers are
        # restored on the way out; only the main thread may install them.
        signaled = threading.Event()

        def _graceful_shutdown(signum: int, _frame) -> None:
            if signaled.is_set():
                return  # already draining; don't tear down mid-request
            signaled.set()
            print(
                f"\nreceived {signal.Signals(signum).name}: draining in-flight "
                "requests, rejecting new ones...",
                file=sys.stderr,
            )
            threading.Thread(
                target=server.drain, kwargs={"timeout": 60.0}, daemon=True
            ).start()

        previous_handlers = {}
        in_main_thread = threading.current_thread() is threading.main_thread()
        if in_main_thread:
            for signum in (signal.SIGINT, signal.SIGTERM):
                previous_handlers[signum] = signal.signal(signum, _graceful_shutdown)
        try:
            print(f"prewarm: healthy={server.prewarm()} workers={server.pool.workers}")
            with ThreadPoolExecutor(max_workers=args.clients, thread_name_prefix="repro-client") as clients:
                responses = list(clients.map(server.handle, requests))
        finally:
            for signum, handler in previous_handlers.items():
                signal.signal(signum, handler)
        for request, response in zip(requests, responses):
            if response.ok:
                stats = response.stats
                print(
                    f"[{request.tag}] ok: {response.total_rows} row(s) in "
                    f"{stats.seconds * 1000:.1f}ms | warm={stats.warm_pool} "
                    f"memo={stats.memo_hits}/{stats.ctp_count} "
                    f"modes={','.join(stats.dispatch_modes)}"
                    + (" [deadline truncated]" if stats.deadline_truncated else "")
                )
            else:
                failures += 1
                print(f"[{request.tag}] {response.status}: {response.error}")
        counters = server.stats()
        if signaled.is_set():
            print("drained: in-flight requests completed, pool closed", file=sys.stderr)
    pool = counters["pool"]
    context = counters["context"]
    print(
        f"\nserved={counters['served']} rejected={counters['rejected']} "
        f"shed={counters['shed']} expired={counters['expired']} "
        f"errors={counters['errors']} | "
        f"pool: dispatches={pool['dispatches']} respawns={pool['respawns']} "
        f"resnapshots={pool['resnapshots']} hangs={pool['hangs']} "
        f"recycles={pool['recycles']} breaker={pool['breaker_state']} | "
        f"delta: size={pool['delta_size']} compactions={pool['compactions']} "
        f"avoided={pool['resnapshots_avoided']} thrash={pool['resnapshot_thrash']} "
        f"generation={counters['generation']} | "
        f"ctp_cache={context['ctp_cache_hits']}/"
        f"{context['ctp_cache_hits'] + context['ctp_cache_misses']}"
    )
    return 1 if failures else 0


def _cmd_demo(args: argparse.Namespace) -> int:
    graph = figure1()
    print("Figure 1 demo graph loaded:", graph)
    query = """
    SELECT ?x ?y ?z ?w WHERE {
      ?x citizenOf "USA" .
      ?y citizenOf "France" .
      ?z citizenOf "France" .
      FILTER(type(?x) = "entrepreneur")
      FILTER(type(?y) = "entrepreneur")
      FILTER(type(?z) = "politician")
      CONNECT(?x, ?y, ?z) AS ?w SCORE size TOP 5
    }
    """
    print("running Q1 (Section 2) with SCORE size TOP 5 ...\n")
    result = evaluate_query(graph, query)
    print(result.format())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Connection search in graph queries (ICDE 2023 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", help="evaluate an EQL query over a graph file")
    query.add_argument("query", help="EQL text (SELECT ... WHERE { ... })")
    query.add_argument("--graph", help="TSV triples or JSON graph file (default: the Figure 1 demo graph)")
    query.add_argument("--algorithm", default="molesp", help="CTP algorithm (default molesp)")
    query.add_argument(
        "--backend",
        choices=("auto", "dict", "csr"),
        default="auto",
        help="graph storage backend for the search (csr = frozen compressed-sparse-row)",
    )
    query.add_argument(
        "--no-interning",
        action="store_true",
        help="disable the hash-consed edge-set pool (frozenset fallback; for A/B timing)",
    )
    query.add_argument(
        "--no-dense-ids",
        action="store_true",
        help="disable dense search-local node ids and flat pool storage "
        "(legacy global-id masks + dict pools; for A/B timing)",
    )
    query.add_argument(
        "--shared-context",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="share one query-scoped search context (pool + result caches) across the "
        "query's CTP evaluations; --no-shared-context restores a pool per CTP (A/B baseline)",
    )
    query.add_argument(
        "--parallelism",
        type=int,
        default=1,
        help="workers for the query's independent CTP evaluations (default 1 = "
        "serial dispatch; rows are identical at any worker count; must be >= 1)",
    )
    query.add_argument(
        "--parallelism-mode",
        choices=PARALLELISM_MODES,
        default="thread",
        help="how --parallelism fans out: 'thread' (wall-clock overlap for "
        "deadline-bounded CTPs), 'process' (worker processes over an "
        "mmap-shared CSR snapshot; real multi-core overlap for CPU-bound "
        "searches), or 'auto' (cost model picks serial/thread/process per query)",
    )
    query.add_argument(
        "--scheduling",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="cost-model-driven CTP scheduling: longest-first submission, "
        "deadline-budget rebalancing, pipelined BGP/CTP overlap under thread "
        "dispatch (rows identical either way)",
    )
    query.add_argument(
        "--snapshot",
        help="binary CSR snapshot file to load the graph from (see the snapshot "
        "subcommand); mutually exclusive with --graph, reused by process workers",
    )
    query.add_argument("--timeout", type=float, default=30.0, help="per-CTP timeout in seconds")
    query.add_argument("--rows", type=int, default=25, help="max rows to display")
    query.set_defaults(handler=_cmd_query)

    info = sub.add_parser("info", help="show statistics of a graph file")
    info.add_argument("--graph", help="TSV triples or JSON graph file (default: Figure 1)")
    info.add_argument("--snapshot", help="binary CSR snapshot file (mutually exclusive with --graph)")
    info.set_defaults(handler=_cmd_info)

    snapshot = sub.add_parser(
        "snapshot",
        help="serialize a graph into a binary CSR snapshot (mmap-shareable across processes)",
    )
    snapshot.add_argument("--graph", help="TSV triples or JSON graph file (default: Figure 1)")
    snapshot.add_argument("--out", required=True, help="snapshot file to write")
    snapshot.set_defaults(handler=_cmd_snapshot)

    serve = sub.add_parser(
        "serve",
        help="drive EQL queries through a long-lived query server "
        "(persistent worker pool, shared caches, admission control)",
    )
    serve.add_argument("queries", nargs="+", help="EQL text, one argument per query")
    serve.add_argument("--graph", help="TSV triples or JSON graph file (default: Figure 1)")
    serve.add_argument("--snapshot", help="binary CSR snapshot file (mutually exclusive with --graph)")
    serve.add_argument("--algorithm", default="molesp", help="default CTP algorithm (default molesp)")
    serve.add_argument(
        "--workers",
        type=int,
        default=os.cpu_count() or 1,
        help="worker processes in the persistent pool (default: one per core)",
    )
    serve.add_argument(
        "--clients",
        type=int,
        default=2,
        help="concurrent client threads driving the server (default 2)",
    )
    serve.add_argument(
        "--repeat",
        type=int,
        default=2,
        help="rounds of the query list per client (default 2; round 2+ hits warm "
        "workers and the cross-request memo)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=8,
        help="in-flight request budget; excess requests are rejected, not queued",
    )
    serve.add_argument("--deadline", type=float, help="per-request wall-clock budget in seconds")
    serve.add_argument("--timeout", type=float, default=30.0, help="default per-CTP timeout in seconds")
    serve.add_argument(
        "--no-interning",
        action="store_true",
        help="disable the hash-consed edge-set pool in server and workers",
    )
    serve.add_argument(
        "--no-dense-ids",
        action="store_true",
        help="disable dense search-local node ids and flat pool storage "
        "in server and workers (legacy A/B baseline)",
    )
    serve.add_argument(
        "--scheduling",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="cost-model-driven CTP scheduling for every served request "
        "(per-response telemetry appears in stats.schedule)",
    )
    serve.add_argument("--rows", type=int, help="per-response row limit (pagination)")
    serve.add_argument(
        "--compaction-threshold",
        type=int,
        default=256,
        help="delta-overlay mutations tolerated before the pool refreezes "
        "base ∪ delta (0 = legacy resnapshot-per-mutation, negative = "
        "never compact; default 256)",
    )
    serve.set_defaults(handler=_cmd_serve)

    demo = sub.add_parser("demo", help="run the paper's Q1 on the Figure 1 graph")
    demo.set_defaults(handler=_cmd_demo)

    bench = sub.add_parser("bench", help="regenerate the paper's tables/figures (see repro.bench)")
    bench.add_argument("rest", nargs=argparse.REMAINDER)
    bench.set_defaults(handler=None)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "bench":
        return bench_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
