"""Workload generators for the paper's evaluation (Section 5.3).

* :mod:`repro.workloads.synthetic` — the parameterized Line / Comb / Star
  graphs of Figure 8 plus the exponential chain of Figure 2;
* :mod:`repro.workloads.cdf` — Connected Dense Forest graphs and their EQL
  queries (Figure 9, Sections 5.5.1);
* :mod:`repro.workloads.realworld` — seeded scale-free substitutes for the
  YAGO3/DBPedia subsets, with CTP workload samplers and the J1-J3 queries
  of Table 1 (see DESIGN.md §3 for the substitution rationale).
"""

from repro.workloads.synthetic import chain_graph, comb_graph, line_graph, star_graph
from repro.workloads.cdf import CDFDataset, cdf_graph, cdf_query
from repro.workloads.queries import random_query
from repro.workloads.realworld import (
    RealWorldDataset,
    dbpedia_like,
    j1_query,
    j2_query,
    j3_query,
    sample_ctp_workload,
    scale_free_graph,
    yago_like,
)

__all__ = [
    "CDFDataset",
    "RealWorldDataset",
    "cdf_graph",
    "cdf_query",
    "chain_graph",
    "comb_graph",
    "dbpedia_like",
    "j1_query",
    "j2_query",
    "j3_query",
    "line_graph",
    "random_query",
    "sample_ctp_workload",
    "scale_free_graph",
    "star_graph",
    "yago_like",
]
