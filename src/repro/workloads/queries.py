"""Random EQL query generation (workload fuzzing).

Generates syntactically valid, *satisfiable-by-construction-biased* EQL
queries against a concrete graph: triple patterns are instantiated from
actual edges, CTP seeds from actual nodes, filters from actual labels and
types.  Used by the fuzz tests to exercise the parser → evaluator → CTP
pipeline on inputs no hand-written test would think of, and usable as a
workload generator for stress benchmarks.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.errors import WorkloadError
from repro.graph.graph import Graph

_CTP_FILTER_POOL = (
    "",
    "UNI",
    "MAX 3",
    "MAX 4",
    "SCORE size",
    "SCORE size TOP 3",
    "LIMIT 5",
    "MAX 3 LIMIT 10",
)


def random_query(
    graph: Graph,
    rng: Optional[random.Random] = None,
    max_patterns: int = 3,
    max_ctps: int = 2,
    timeout: float = 2.0,
) -> str:
    """One random EQL query grounded in ``graph``'s actual content.

    The triple patterns follow a random walk over real edges so the BGP
    usually has embeddings; CTP arguments reuse BGP variables or real node
    labels; every CTP gets a TIMEOUT so fuzzing stays bounded.
    """
    if graph.num_edges == 0:
        raise WorkloadError("random_query needs a graph with edges")
    rng = rng or random.Random()
    variables: List[str] = []
    node_vars: List[str] = []  # CONNECT arguments must bind nodes
    clauses: List[str] = []

    def fresh_var(node: bool = False) -> str:
        name = f"v{len(variables)}"
        variables.append(name)
        if node:
            node_vars.append(name)
        return name

    # --- triple patterns along a random walk (connected BGP) ---
    num_patterns = rng.randint(1, max_patterns)
    edge = graph.edge(rng.randrange(graph.num_edges))
    subject_var = fresh_var(node=True)
    current_node = edge.source
    for _ in range(num_patterns):
        incident = graph.adjacent(current_node)
        if not incident:
            break
        edge_id, other, outgoing = incident[rng.randrange(len(incident))]
        edge = graph.edge(edge_id)
        object_var = fresh_var(node=True)
        edge_term = f'"{edge.label}"' if rng.random() < 0.7 else f"?{fresh_var()}"
        if outgoing:
            clauses.append(f"?{subject_var} {edge_term} ?{object_var} .")
        else:
            clauses.append(f"?{object_var} {edge_term} ?{subject_var} .")
        # occasionally pin one end to its actual label
        if rng.random() < 0.3:
            label = graph.node(other).label.replace('"', "")
            if label:
                clauses.append(f'FILTER(?{object_var} = "{label}")')
        subject_var = object_var
        current_node = other

    # --- CTPs over existing variables and/or real node labels ---
    num_ctps = rng.randint(0 if clauses else 1, max_ctps)
    for index in range(num_ctps):
        m = rng.randint(2, 3)
        seeds: List[str] = []
        for _ in range(m):
            roll = rng.random()
            if roll < 0.5 and node_vars:
                seeds.append(f"?{rng.choice(node_vars)}")
            elif roll < 0.85:
                node = graph.node(rng.randrange(graph.num_nodes))
                label = node.label.replace('"', "")
                seeds.append(f'"{label}"' if label else "*")
            else:
                seeds.append("*")
        if all(seed == "*" for seed in seeds):
            seeds[0] = f'"{graph.node(rng.randrange(graph.num_nodes)).label}"'
        if len(set(seeds)) != len(seeds):
            # CTP variables must be pairwise distinct; degrade dupes to *
            deduped = []
            seen = set()
            for seed in seeds:
                if seed in seen and seed.startswith("?"):
                    deduped.append("*")
                else:
                    seen.add(seed)
                    deduped.append(seed)
            seeds = deduped
        tree_var = fresh_var()
        filters = rng.choice(_CTP_FILTER_POOL)
        clauses.append(f"CONNECT({', '.join(seeds)}) AS ?{tree_var} {filters} TIMEOUT {timeout}")

    head = "*" if rng.random() < 0.5 else " ".join(f"?{v}" for v in rng.sample(variables, k=min(len(variables), 2)))
    body = "\n  ".join(clauses)
    suffix = f" LIMIT {rng.randint(1, 50)}" if rng.random() < 0.3 else ""
    return f"SELECT {head} WHERE {{\n  {body}\n}}{suffix}"
