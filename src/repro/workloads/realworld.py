"""Scale-free substitutes for the paper's real-world datasets.

The paper evaluates on a 6M-triple YAGO3 subset and an 18M-triple DBPedia
subset (Sections 5.4.3 and 5.5.2).  Neither is available offline, and a
pure-Python engine targets smaller graphs anyway, so we generate seeded
synthetic stand-ins that preserve what the algorithms are sensitive to:

* **degree skew** — preferential attachment yields the hubs (countries,
  categories) that dominate real knowledge graphs and stress bidirectional
  search;
* **label skew** — edge labels drawn from a Zipf distribution, as
  predicate usage in RDF datasets is heavily skewed;
* **typed entities** — nodes carry types (person, organization, place, ...)
  so the J1-J3 queries of Table 1 can bind seed sets of realistic,
  *very unbalanced* sizes;
* **connectivity** — a preferential spanning pass keeps the graph
  connected, so CTPs between random seeds usually have answers, like the
  entity-to-entity queries of QGSTP's DBPedia workload.

The CTP workload sampler mirrors the paper's query mix: 312 CTPs with
m = 2..6 distributed as 83/98/85/38/8 (Section 5.4.3), sampled around
anchor nodes so results exist within a few hops.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.graph.graph import Graph

#: Predicate vocabulary (Zipf-ranked: earlier labels are more frequent).
EDGE_LABELS = (
    "linksTo",
    "type",
    "locatedIn",
    "bornIn",
    "worksFor",
    "memberOf",
    "created",
    "citizenOf",
    "knows",
    "spouse",
    "owns",
    "investsIn",
    "affiliation",
    "funds",
    "parentOf",
)

NODE_TYPES = ("person", "organization", "place", "work", "event", "category")

#: The paper's CTP workload mix on DBPedia: number of CTPs per m (Sec 5.4.3).
PAPER_M_DISTRIBUTION: Dict[int, int] = {2: 83, 3: 98, 4: 85, 5: 38, 6: 8}


@dataclass
class RealWorldDataset:
    """A generated knowledge-graph substitute."""

    graph: Graph
    name: str
    seed: int
    nodes_by_type: Dict[str, List[int]] = field(default_factory=dict)


def _zipf_weights(n: int, exponent: float = 1.0) -> List[float]:
    return [1.0 / (rank + 1) ** exponent for rank in range(n)]


def scale_free_graph(
    num_nodes: int,
    num_edges: int,
    seed: int = 0,
    name: str = "scale-free",
    edge_labels: Sequence[str] = EDGE_LABELS,
    node_types: Sequence[str] = NODE_TYPES,
) -> RealWorldDataset:
    """Connected preferential-attachment multigraph with skewed labels."""
    if num_nodes < 2:
        raise WorkloadError("need at least 2 nodes")
    if num_edges < num_nodes - 1:
        raise WorkloadError("need at least num_nodes - 1 edges to stay connected")
    rng = random.Random(seed)
    graph = Graph(name)
    type_weights = _zipf_weights(len(node_types), 0.8)
    nodes_by_type: Dict[str, List[int]] = {t: [] for t in node_types}
    for index in range(num_nodes):
        node_type = rng.choices(node_types, weights=type_weights)[0]
        node = graph.add_node(f"ent_{index}", types=(node_type,))
        nodes_by_type[node_type].append(node)
    label_weights = _zipf_weights(len(edge_labels), 1.0)
    # endpoint pool for preferential attachment (degree-proportional picks)
    pool: List[int] = [0]
    edges_added = 0
    # spanning pass: node i attaches to a preferentially chosen earlier node
    for node in range(1, num_nodes):
        partner = pool[rng.randrange(len(pool))]
        label = rng.choices(edge_labels, weights=label_weights)[0]
        if rng.random() < 0.5:
            graph.add_edge(node, partner, label)
        else:
            graph.add_edge(partner, node, label)
        pool.append(node)
        pool.append(partner)
        edges_added += 1
    # densification pass: preferential endpoints on both sides
    while edges_added < num_edges:
        source = pool[rng.randrange(len(pool))]
        target = pool[rng.randrange(len(pool))]
        if source == target:
            continue
        label = rng.choices(edge_labels, weights=label_weights)[0]
        graph.add_edge(source, target, label)
        pool.append(source)
        pool.append(target)
        edges_added += 1
    return RealWorldDataset(graph=graph, name=name, seed=seed, nodes_by_type=nodes_by_type)


def yago_like(scale: float = 1.0, seed: int = 7) -> RealWorldDataset:
    """YAGO3-subset stand-in (paper: 6M triples; default here: 24k)."""
    num_nodes = max(50, int(8_000 * scale))
    num_edges = max(num_nodes, int(24_000 * scale))
    return scale_free_graph(num_nodes, num_edges, seed=seed, name=f"yago-like(scale={scale})")


def dbpedia_like(scale: float = 1.0, seed: int = 13) -> RealWorldDataset:
    """DBPedia-subset stand-in (paper: 18M triples; default here: 48k)."""
    num_nodes = max(50, int(16_000 * scale))
    num_edges = max(num_nodes, int(48_000 * scale))
    return scale_free_graph(num_nodes, num_edges, seed=seed, name=f"dbpedia-like(scale={scale})")


def scale_workload(
    num_nodes: int,
    seed: int = 0,
    edges_per_node: float = 2.0,
    num_ctps: int = 6,
    max_radius: int = 2,
) -> Tuple[Graph, List[Tuple[Tuple[int, ...], ...]]]:
    """A seeded scale-free graph plus a tight-radius CTP batch, at any size.

    The workload of the million-node scale bench (``python -m repro.bench
    scale``): the graph grows to ``num_nodes`` (the paper's datasets are
    6M/18M triples; the bench runs this at 10^6), while each CTP stays
    *local* — m=2 seed sets sampled inside a radius-``max_radius`` BFS
    ball, the shape real entity-to-entity queries take on large knowledge
    graphs.  That contrast (huge id space, small touched set) is exactly
    what separates dense search-local node ids from legacy global-id
    masks, and everything is seeded so dense/legacy A-B runs see the
    identical graph and CTPs.
    """
    dataset = scale_free_graph(
        num_nodes,
        max(num_nodes - 1, int(num_nodes * edges_per_node)),
        seed=seed,
        name=f"scale({num_nodes})",
    )
    ctps = sample_ctp_workload(
        dataset.graph,
        m_distribution={2: num_ctps},
        seed=seed + 1,
        max_radius=max_radius,
        seeds_per_set=(1, 2),
    )
    return dataset.graph, ctps


def sample_ctp_workload(
    graph: Graph,
    m_distribution: Optional[Dict[int, int]] = None,
    scale: float = 1.0,
    seed: int = 0,
    max_radius: int = 4,
    seeds_per_set: Tuple[int, int] = (1, 3),
) -> List[Tuple[Tuple[int, ...], ...]]:
    """Sample CTPs mirroring the paper's m-distribution (83/98/85/38/8).

    Each CTP is sampled around a random anchor: a BFS ball of radius
    ``max_radius`` is drawn and ``m`` disjoint seed sets are picked inside
    it, so connecting trees exist.  ``scale`` shrinks the per-m counts
    proportionally (at least one CTP per m).
    """
    distribution = m_distribution or PAPER_M_DISTRIBUTION
    rng = random.Random(seed)
    workload: List[Tuple[Tuple[int, ...], ...]] = []
    for m, count in sorted(distribution.items()):
        scaled = max(1, round(count * scale))
        for _ in range(scaled):
            workload.append(_sample_one_ctp(graph, m, rng, max_radius, seeds_per_set))
    return workload


def _sample_one_ctp(
    graph: Graph,
    m: int,
    rng: random.Random,
    max_radius: int,
    seeds_per_set: Tuple[int, int],
) -> Tuple[Tuple[int, ...], ...]:
    from collections import deque

    while True:
        anchor = rng.randrange(graph.num_nodes)
        ball: List[int] = []
        seen = {anchor}
        queue = deque([(anchor, 0)])
        while queue and len(ball) < 40 * m:
            node, depth = queue.popleft()
            ball.append(node)
            if depth >= max_radius:
                continue
            for _, other, _ in graph.adjacent(node):
                if other not in seen:
                    seen.add(other)
                    queue.append((other, depth + 1))
        if len(ball) < m * seeds_per_set[1] + 1:
            continue
        rng.shuffle(ball)
        seed_sets: List[Tuple[int, ...]] = []
        cursor = 0
        for _ in range(m):
            size = rng.randint(*seeds_per_set)
            seed_sets.append(tuple(ball[cursor : cursor + size]))
            cursor += size
        return tuple(seed_sets)


# ----------------------------------------------------------------------
# The J1-J3 queries of Table 1 (Section 5.5.2), adapted to our vocabulary.
# ----------------------------------------------------------------------

def j1_query(ctp_filters: str = "TIMEOUT 10") -> str:
    """J1: BGPs plus 2 CTPs over moderately selective seed sets.

    Uses the generator's most frequent predicates so the conjunctive part
    has embeddings at every scale (the original YAGO labels would be too
    selective on a scaled-down substitute).
    """
    return f"""
    SELECT ?p ?o ?pl ?l1 ?l2 WHERE {{
      ?p linksTo ?o .
      ?o locatedIn ?pl .
      FILTER(type(?p) = "person")
      CONNECT(?p, ?pl) AS ?l1 {ctp_filters}
      CONNECT(?p, ?o, ?pl) AS ?l2 {ctp_filters}
    }}
    """


def j2_query(ctp_filters: str = "MAX 4 TIMEOUT 10") -> str:
    """J2: 2 BGPs and 1 CTP with one very large seed set (all persons)."""
    return f"""
    SELECT ?p ?w ?l WHERE {{
      ?p linksTo ?t .
      ?w created ?x .
      FILTER(type(?p) = "person")
      FILTER(type(?w) = "work")
      CONNECT(?p, ?w) AS ?l {ctp_filters}
    }}
    """


def j3_query(ctp_filters: str = "MAX 3 LIMIT 200 TIMEOUT 10") -> str:
    """J3: a single CTP with an N (wildcard) seed set."""
    return f"""
    SELECT ?e ?l WHERE {{
      CONNECT(?e, *) AS ?l {ctp_filters}
      FILTER(type(?e) = "event")
    }}
    """
