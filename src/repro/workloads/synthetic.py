"""Parameterized synthetic graphs of Figure 8 (plus Figure 2's chain).

All generators return ``(graph, seed_sets)`` where every seed set is a
singleton, matching the paper's setup ("each seed set is of size 1").

* ``Line(m, n_L)`` — m seeds in a line, consecutive seeds separated by
  ``n_L`` intermediary nodes (``s_L = n_L + 1`` edges).  Minimizes the
  number of subtrees for a given size: O((m*n_L)^2) subtrees.
* ``Comb(n_A, n_S, s_L, d_BA)`` — a main line with ``n_A`` bristle anchors
  (each a seed); each bristle has ``n_S`` segments of ``s_L`` edges, each
  segment ending in a seed; ``d_BA`` intermediary nodes between successive
  anchors.  ``m = n_A * (n_S + 1)``.
* ``Star(m, s_L)`` — a central node with ``m`` arms of ``s_L`` edges, a
  seed at the end of each arm.  Maximizes subtree count: O(2^m * s_L^2).
* ``chain(N)`` — Figure 2: ``N+1`` nodes in a line with *two* parallel
  edges between consecutive nodes, so the 2-seed CTP between the endpoints
  has exactly ``2^N`` results (the exponential worst case motivating CTP
  filters and timeouts).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import WorkloadError
from repro.graph.graph import Graph

SeedSets = Tuple[Tuple[int, ...], ...]


def line_graph(m: int, n_l: int, edge_label: str = "e") -> Tuple[Graph, SeedSets]:
    """``Line(m, n_L)``: m singleton seed sets at distance ``n_L + 1``."""
    if m < 2:
        raise WorkloadError("Line needs at least 2 seeds")
    if n_l < 0:
        raise WorkloadError("n_L must be >= 0")
    graph = Graph(f"line(m={m},nL={n_l})")
    seeds: List[int] = [graph.add_node("S0", types=("seed",))]
    for segment in range(1, m):
        previous = seeds[-1]
        for j in range(n_l):
            node = graph.add_node(f"L{segment}_{j}")
            graph.add_edge(previous, node, edge_label)
            previous = node
        seed = graph.add_node(f"S{segment}", types=("seed",))
        graph.add_edge(previous, seed, edge_label)
        seeds.append(seed)
    return graph, tuple((s,) for s in seeds)


def comb_graph(
    n_a: int,
    n_s: int,
    s_l: int,
    d_ba: int | None = None,
    edge_label: str = "e",
) -> Tuple[Graph, SeedSets]:
    """``Comb(n_A, n_S, s_L, d_BA)`` of Figure 8 (top left).

    ``d_BA`` defaults to ``s_L - 1`` intermediary nodes so the anchor
    spacing equals the bristle segment length, which is how the paper's
    sweeps vary a single "distance between the seeds" parameter.
    """
    if n_a < 1 or n_s < 0 or s_l < 1:
        raise WorkloadError("Comb needs n_A >= 1, n_S >= 0, s_L >= 1")
    if d_ba is None:
        d_ba = s_l - 1
    graph = Graph(f"comb(nA={n_a},nS={n_s},sL={s_l},dBA={d_ba})")
    seeds: List[int] = []
    previous_anchor = None
    for a in range(n_a):
        anchor = graph.add_node(f"A{a}", types=("seed",))
        seeds.append(anchor)
        if previous_anchor is not None:
            current = previous_anchor
            for j in range(d_ba):
                node = graph.add_node(f"M{a}_{j}")
                graph.add_edge(current, node, edge_label)
                current = node
            graph.add_edge(current, anchor, edge_label)
        previous_anchor = anchor
        # the bristle: n_S segments of s_L edges, each ending in a seed
        current = anchor
        for segment in range(n_s):
            for j in range(s_l - 1):
                node = graph.add_node(f"B{a}_{segment}_{j}")
                graph.add_edge(current, node, edge_label)
                current = node
            seed = graph.add_node(f"S{a}_{segment}", types=("seed",))
            graph.add_edge(current, seed, edge_label)
            seeds.append(seed)
            current = seed
    return graph, tuple((s,) for s in seeds)


def star_graph(m: int, s_l: int, edge_label: str = "e") -> Tuple[Graph, SeedSets]:
    """``Star(m, s_L)``: central node, m arms of ``s_L`` edges, seeds at tips."""
    if m < 2 or s_l < 1:
        raise WorkloadError("Star needs m >= 2 and s_L >= 1")
    graph = Graph(f"star(m={m},sL={s_l})")
    center = graph.add_node("center")
    seeds: List[int] = []
    for arm in range(m):
        current = center
        for j in range(s_l - 1):
            node = graph.add_node(f"R{arm}_{j}")
            graph.add_edge(current, node, edge_label)
            current = node
        seed = graph.add_node(f"S{arm}", types=("seed",))
        graph.add_edge(current, seed, edge_label)
        seeds.append(seed)
    return graph, tuple((s,) for s in seeds)


def chain_graph(n: int, labels: Tuple[str, str] = ("a", "b")) -> Tuple[Graph, SeedSets]:
    """Figure 2: the chain whose endpoint CTP has ``2^n`` results."""
    if n < 1:
        raise WorkloadError("chain needs at least one segment")
    graph = Graph(f"chain(N={n})")
    first = graph.add_node("1")
    previous = first
    for i in range(2, n + 2):
        node = graph.add_node(str(i))
        graph.add_edge(previous, node, labels[0])
        graph.add_edge(previous, node, labels[1])
        previous = node
    return graph, ((first,), (previous,))
