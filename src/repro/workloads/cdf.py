"""Connected Dense Forest (CDF) graphs and queries — Figure 9, Section 5.3.

A CDF graph has a *top forest* and a *bottom forest*, each made of ``N_T``
disjoint complete binary trees with 7 nodes (root, two mid nodes, four
leaves; 6 edges — the paper's "depth 3" counting levels).  Edge labels
follow Figure 9: ``a``/``b`` from top roots, ``c``/``d`` to top leaves,
``e``/``f`` from bottom roots, ``g``/``h`` to bottom leaves.

``N_L`` links of ``S_L`` ``link``-labelled triples connect eligible top
leaves to eligible bottom leaves:

* eligible top leaves are targets of ``c`` edges, and the links are
  concentrated on 50% of them (one per top tree);
* for ``m=2`` each link is a chain ``top leaf -> ... -> bottom leaf``, and
  eligible bottom leaves are 50% of the ``g`` targets;
* for ``m=3`` each link is a Y: a stem of ``S_L - 2`` edges from the top
  leaf to a fork, then one edge to each bottom leaf of a sibling pair
  (the ``g``- and ``h``-child of the same mid node), matching the query's
  ``(?v g ?bl1)(?v h ?bl2)`` BGP.  50% of bottom leaves are eligible.

Each link is a distinct connecting tree between its leaves, so the EQL
query over a CDF graph has exactly ``N_L`` answers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import WorkloadError
from repro.graph.graph import Graph


@dataclass
class CDFDataset:
    """A generated CDF graph plus the bookkeeping the harness needs."""

    graph: Graph
    m: int
    num_trees: int
    num_links: int
    link_length: int
    #: (top leaf, bottom leaves...) per link — the expected query answers.
    links: List[Tuple[int, ...]] = field(default_factory=list)
    eligible_top: List[int] = field(default_factory=list)
    eligible_bottom: List[int] = field(default_factory=list)

    @property
    def expected_results(self) -> int:
        return self.num_links

    def query(self) -> str:
        return cdf_query(self.m)


def _binary_tree(graph: Graph, prefix: str, labels: Tuple[str, str, str, str]) -> Tuple[int, List[int], List[int]]:
    """One 7-node complete binary tree; returns (root, mids, leaves)."""
    down1, down2, leaf1, leaf2 = labels
    root = graph.add_node(f"{prefix}_root", types=("forest_root",))
    mids = []
    leaves = []
    for side, label in ((0, down1), (1, down2)):
        mid = graph.add_node(f"{prefix}_m{side}", types=("forest_mid",))
        graph.add_edge(root, mid, label)
        mids.append(mid)
        for leaf_side, leaf_label in ((0, leaf1), (1, leaf2)):
            leaf = graph.add_node(f"{prefix}_l{side}{leaf_side}", types=("forest_leaf",))
            graph.add_edge(mid, leaf, leaf_label)
            leaves.append(leaf)
    return root, mids, leaves


def cdf_graph(num_trees: int, num_links: int, link_length: int, m: int = 2, seed: int = 0) -> CDFDataset:
    """Generate a CDF graph (``N_T`` trees per forest, ``N_L`` links).

    ``m`` selects chain links (2) or Y links (3); ``link_length`` is the
    paper's ``S_L`` (the number of ``link`` triples per link; ``m=3`` needs
    ``S_L >= 3``).
    """
    if m not in (2, 3):
        raise WorkloadError("CDF graphs are defined for m in {2, 3}")
    if num_trees < 1 or num_links < 0:
        raise WorkloadError("need num_trees >= 1 and num_links >= 0")
    if m == 2 and link_length < 1:
        raise WorkloadError("m=2 links need S_L >= 1")
    if m == 3 and link_length < 3:
        raise WorkloadError("m=3 (Y) links need S_L >= 3")
    rng = random.Random(seed)
    graph = Graph(f"cdf(m={m},NT={num_trees},NL={num_links},SL={link_length})")
    eligible_top: List[int] = []
    eligible_bottom: List[int] = []  # m=2: g-targets; m=3: (bl1, bl2) pairs flattened
    bottom_pairs: List[Tuple[int, int]] = []
    for t in range(num_trees):
        _, _, top_leaves = _binary_tree(graph, f"t{t}", ("a", "b", "c", "d"))
        # c-edge targets are leaves 0 and 2 (the first child of each mid);
        # concentrate links on 50% of them: one per tree.
        eligible_top.append(top_leaves[0])
    for t in range(num_trees):
        _, _, bottom_leaves = _binary_tree(graph, f"b{t}", ("e", "f", "g", "h"))
        if m == 2:
            # g-targets are leaves 0 and 2; 50% participate: one per tree.
            eligible_bottom.append(bottom_leaves[0])
        else:
            # 50% of all bottom leaves: one sibling (g, h) pair per tree.
            bottom_pairs.append((bottom_leaves[0], bottom_leaves[1]))
            eligible_bottom.extend((bottom_leaves[0], bottom_leaves[1]))
    links: List[Tuple[int, ...]] = []
    # For m=3, draw distinct (top leaf, sibling pair) combinations when
    # possible: two Y-links sharing both endpoints would create extra
    # cross-stem arborescences and the query would exceed N_L answers.
    if m == 3:
        combos = [(t, p) for t in eligible_top for p in range(len(bottom_pairs))]
        if num_links <= len(combos):
            chosen = rng.sample(combos, num_links)
        else:
            chosen = [rng.choice(combos) for _ in range(num_links)]
    for link_index in range(num_links):
        if m == 2:
            top = rng.choice(eligible_top)
            bottom = rng.choice(eligible_bottom)
            current = top
            for hop in range(link_length - 1):
                node = graph.add_node(f"lk{link_index}_{hop}", types=("link_node",))
                graph.add_edge(current, node, "link")
                current = node
            graph.add_edge(current, bottom, "link")
            links.append((top, bottom))
        else:
            top, pair_index = chosen[link_index]
            bottom1, bottom2 = bottom_pairs[pair_index]
            current = top
            for hop in range(link_length - 2):
                node = graph.add_node(f"lk{link_index}_{hop}", types=("link_node",))
                graph.add_edge(current, node, "link")
                current = node
            graph.add_edge(current, bottom1, "link")
            graph.add_edge(current, bottom2, "link")
            links.append((top, bottom1, bottom2))
    return CDFDataset(
        graph=graph,
        m=m,
        num_trees=num_trees,
        num_links=num_links,
        link_length=link_length,
        links=links,
        eligible_top=eligible_top,
        eligible_bottom=eligible_bottom,
    )


def cdf_query(m: int, ctp_filters: str = "") -> str:
    """The EQL query of Section 5.3 for CDF graphs.

    ``m=2``: paths between top ``c``-leaves and bottom ``g``-leaves;
    ``m=3``: connecting trees between a top leaf and a ``g``/``h`` sibling
    pair.  ``ctp_filters`` is appended verbatim to the CONNECT clause
    (e.g. ``"UNI"`` or ``"TIMEOUT 5"``).
    """
    close = "}"
    if m == 2:
        return (
            "SELECT ?v ?tl ?l WHERE {\n"
            "  ?x c ?tl .\n"
            "  ?v g ?bl .\n"
            f"  CONNECT(?bl, ?tl) AS ?l {ctp_filters}\n"
            f"{close}"
        )
    if m == 3:
        return (
            "SELECT ?v ?tl ?l WHERE {\n"
            "  ?x c ?tl .\n"
            "  ?v g ?bl1 .\n"
            "  ?v h ?bl2 .\n"
            f"  CONNECT(?tl, ?bl1, ?bl2) AS ?l {ctp_filters}\n"
            f"{close}"
        )
    raise WorkloadError("CDF queries are defined for m in {2, 3}")
