"""Deterministic fault injection for the serving stack.

Chaos testing a long-lived query server is only useful when the chaos is
*reproducible*: a crash that fires "sometimes" produces flaky tests, and
a recovery latency measured against random faults cannot be compared
across commits.  This module provides a seeded, picklable
:class:`FaultPlan` that the real dispatch paths consult through three
tiny test-only hooks:

* :func:`repro.query.parallel._process_worker_run` calls
  :func:`inject(SITE_WORKER_RUN) <inject>` before evaluating, so a plan
  can **crash** the worker mid-CTP (``os._exit``), **hang** it past any
  deadline, make it return **slow**\\ ly, grow its **rss** with retained
  ballast, or raise a deterministic **scorer**-style exception
  (:class:`~repro.errors.FaultInjected`).
* :func:`repro.graph.snapshot.load_snapshot` calls
  :func:`corrupted_path` so a plan can hand a worker (or the parent) a
  **corrupt_snapshot** — a truncated copy of the real file, exercising
  the format's actual validation path
  (:class:`~repro.errors.SnapshotError`), not a mocked error.
* :class:`repro.query.pool.WorkerPool` ships the active plan to its
  workers through the executor ``initargs`` (module globals do not cross
  a forkserver/spawn boundary) together with the pool's **epoch** —
  ``respawns + recycles`` — so a spec gated with ``epochs=(0,)`` fires in
  the first worker generation and *stops* after recovery replaces it.
  Without epoch gating, a counter-indexed fault would re-fire in every
  fresh worker (per-process counters restart at zero) and "recovery"
  would be unobservable.

Everything is deterministic: firing is decided by per-site invocation
counters (``at``/``every``) or by an RNG seeded from ``(plan.seed, site,
counter)`` (``probability``) — never by wall clock or PID.

Usage (tests / ``python -m repro.bench chaos``)::

    plan = FaultPlan(specs=(FaultSpec.crash(at=(0,), epochs=(0,)),))
    install_plan(plan)
    try:
        ...  # drive the real server / dispatch paths
    finally:
        clear_plan()

The hooks are zero-cost when no plan is installed (one global ``is
None`` check); production code never constructs a plan.
"""

from __future__ import annotations

import os
import random
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigError, FaultInjected

#: Hook sites.  ``worker_run`` fires inside :func:`_process_worker_run`
#: (one count per CTP evaluation in that process); ``snapshot_load``
#: fires inside :func:`load_snapshot` (one count per load in that
#: process, including worker initializers).
SITE_WORKER_RUN = "worker_run"
SITE_SNAPSHOT_LOAD = "snapshot_load"

#: Fault kinds.
KIND_CRASH = "crash"
KIND_HANG = "hang"
KIND_SLOW = "slow"
KIND_RSS = "rss"
KIND_SCORER = "scorer"
KIND_CORRUPT_SNAPSHOT = "corrupt_snapshot"

_KINDS = (KIND_CRASH, KIND_HANG, KIND_SLOW, KIND_RSS, KIND_SCORER, KIND_CORRUPT_SNAPSHOT)
_SITES = (SITE_WORKER_RUN, SITE_SNAPSHOT_LOAD)


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault: what happens, where, and on which invocations.

    Firing rule (evaluated against the site's per-process invocation
    counter, 0-based): ``at`` wins when set (fire exactly on those
    counts), else ``every`` (fire on every ``every``-th count), else
    ``probability`` (seeded coin flip per count), else fire on *every*
    invocation.  ``epochs`` additionally gates the spec to specific
    worker generations (see the module docstring); ``None`` means all.
    """

    kind: str
    site: str = SITE_WORKER_RUN
    at: Optional[Tuple[int, ...]] = None
    every: Optional[int] = None
    probability: Optional[float] = None
    epochs: Optional[Tuple[int, ...]] = None
    #: Sleep length for ``slow``/``hang`` (a hang just sleeps far past
    #: any watchdog — the parent kills the worker long before it wakes).
    seconds: float = 0.05
    #: Ballast per ``rss`` firing, MiB (retained for the process's life).
    grow_mb: float = 8.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r} (one of {_KINDS})")
        if self.site not in _SITES:
            raise ConfigError(f"unknown fault site {self.site!r} (one of {_SITES})")
        if self.kind == KIND_CORRUPT_SNAPSHOT and self.site != SITE_SNAPSHOT_LOAD:
            raise ConfigError("corrupt_snapshot faults only fire at the snapshot_load site")
        if self.kind != KIND_CORRUPT_SNAPSHOT and self.site == SITE_SNAPSHOT_LOAD:
            raise ConfigError(f"{self.kind!r} faults cannot fire at the snapshot_load site")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ConfigError(f"probability must be in [0, 1], got {self.probability}")
        if self.every is not None and self.every < 1:
            raise ConfigError(f"every must be >= 1, got {self.every}")
        if self.seconds < 0 or self.grow_mb <= 0:
            raise ConfigError("seconds must be >= 0 and grow_mb > 0")

    # Convenience constructors — tests read better with
    # ``FaultSpec.crash(at=(0,))`` than with positional kind strings.
    @classmethod
    def crash(cls, **kw: Any) -> "FaultSpec":
        return cls(kind=KIND_CRASH, **kw)

    @classmethod
    def hang(cls, seconds: float = 3600.0, **kw: Any) -> "FaultSpec":
        return cls(kind=KIND_HANG, seconds=seconds, **kw)

    @classmethod
    def slow(cls, seconds: float = 0.05, **kw: Any) -> "FaultSpec":
        return cls(kind=KIND_SLOW, seconds=seconds, **kw)

    @classmethod
    def rss(cls, grow_mb: float = 8.0, **kw: Any) -> "FaultSpec":
        return cls(kind=KIND_RSS, grow_mb=grow_mb, **kw)

    @classmethod
    def scorer(cls, **kw: Any) -> "FaultSpec":
        return cls(kind=KIND_SCORER, **kw)

    @classmethod
    def corrupt_snapshot(cls, **kw: Any) -> "FaultSpec":
        kw.setdefault("site", SITE_SNAPSHOT_LOAD)
        return cls(kind=KIND_CORRUPT_SNAPSHOT, **kw)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of :class:`FaultSpec`\\ s.  Picklable by construction
    (frozen dataclasses of primitives) so it crosses the executor
    ``initargs`` boundary to forkserver/spawn workers intact."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def active_specs(self, site: str, counter: int, epoch: int) -> Tuple[FaultSpec, ...]:
        """The specs that fire for invocation ``counter`` of ``site``."""
        fired = []
        for index, spec in enumerate(self.specs):
            if spec.site != site:
                continue
            if spec.epochs is not None and epoch not in spec.epochs:
                continue
            if spec.at is not None:
                if counter not in spec.at:
                    continue
            elif spec.every is not None:
                if counter % spec.every != 0:
                    continue
            elif spec.probability is not None:
                roll = random.Random(f"{self.seed}:{site}:{counter}:{index}").random()
                if roll >= spec.probability:
                    continue
            fired.append(spec)
        return tuple(fired)


# ----------------------------------------------------------------------
# per-process plan state
# ----------------------------------------------------------------------
_active_plan: Optional[FaultPlan] = None
_epoch: int = 0
_counters: Dict[str, int] = {}
#: Retained allocations made by ``rss`` faults (lives until process exit
#: or :func:`clear_plan` — exactly the leak shape worker recycling cures).
_ballast: list = []


def install_plan(plan: Optional[FaultPlan], epoch: int = 0) -> None:
    """Install ``plan`` for this process (``None`` is equivalent to
    :func:`clear_plan`).  Resets the site counters — a plan installation
    marks the start of a fresh deterministic run."""
    global _active_plan, _epoch
    _active_plan = plan
    _epoch = epoch
    _counters.clear()
    _ballast.clear()


def clear_plan() -> None:
    """Remove any installed plan and drop its ballast/counters."""
    install_plan(None)


def active_plan() -> Optional[FaultPlan]:
    return _active_plan


def current_epoch() -> int:
    return _epoch


def _next_counter(site: str) -> int:
    count = _counters.get(site, 0)
    _counters[site] = count + 1
    return count


def inject(site: str) -> None:
    """Hook entry: apply every fault firing at this invocation of ``site``.

    Called by the real dispatch paths; a no-op (one ``is None`` check)
    unless a plan is installed.  Effects: ``crash`` exits the process
    abruptly (``os._exit`` — no cleanup, exactly like a segfault as seen
    from the parent's ``BrokenProcessPool``); ``hang``/``slow`` sleep;
    ``rss`` retains ballast; ``scorer`` raises
    :class:`~repro.errors.FaultInjected` (a deterministic user-code
    error: NOT retryable, must surface to the caller as a typed error).
    """
    plan = _active_plan
    if plan is None:
        return
    counter = _next_counter(site)
    for spec in plan.active_specs(site, counter, _epoch):
        if spec.kind == KIND_CRASH:
            os._exit(13)
        elif spec.kind in (KIND_HANG, KIND_SLOW):
            time.sleep(spec.seconds)
        elif spec.kind == KIND_RSS:
            _ballast.append(bytearray(int(spec.grow_mb * 1024 * 1024)))
        elif spec.kind == KIND_SCORER:
            raise FaultInjected(
                f"injected scorer failure (site={site}, invocation={counter}, epoch={_epoch})"
            )


def corrupted_path(path: Any) -> Any:
    """Hook entry for :func:`repro.graph.snapshot.load_snapshot`.

    When a ``corrupt_snapshot`` fault fires for this load, return the
    path of a *truncated copy* of ``path`` — the loader then trips the
    format's real truncation validation and raises
    :class:`~repro.errors.SnapshotError`; otherwise return ``path``
    unchanged.  The copy is pid-tagged like an auto-snapshot
    (``repro-csr-<pid>-fault*.snapshot``) so
    :func:`repro.graph.snapshot._reap_stale_snapshots` collects it once
    this process dies, even when the process is a crashed worker.
    """
    plan = _active_plan
    if plan is None:
        return path
    counter = _next_counter(SITE_SNAPSHOT_LOAD)
    fired = plan.active_specs(SITE_SNAPSHOT_LOAD, counter, _epoch)
    if not any(spec.kind == KIND_CORRUPT_SNAPSHOT for spec in fired):
        return path
    return _truncated_copy(path, counter)


def _truncated_copy(path: Any, counter: int, fraction: float = 0.6) -> str:
    """Write a ``fraction``-length prefix copy of ``path`` and return it.

    60% keeps the prefix + JSON header intact for typical snapshots, so
    the loader fails on the *payload truncation* check — the deepest
    validation a short read can reach — rather than on a missing magic.
    """
    size = os.path.getsize(path)
    keep = max(1, int(size * fraction))
    fd, copy_path = tempfile.mkstemp(
        prefix=f"repro-csr-{os.getpid()}-fault{counter}-", suffix=".snapshot"
    )
    with open(path, "rb") as src, os.fdopen(fd, "wb") as dst:
        dst.write(src.read(keep))
    return copy_path
